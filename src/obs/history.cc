#include "obs/history.hh"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

#include "base/logging.hh"
#include "obs/json.hh"
#include "obs/report.hh"

namespace dnasim
{
namespace obs
{

namespace
{

/** 64-bit FNV-1a over @p s. */
uint64_t
fnv1a(const std::string &s, uint64_t hash = 0xcbf29ce484222325ull)
{
    for (unsigned char c : s) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

double
finiteOr(double v, double fallback)
{
    return std::isfinite(v) ? v : fallback;
}

/** Stringify a config value that may be a string or a number. */
std::string
configValue(const JsonValue &v)
{
    if (v.isString())
        return v.asString();
    if (v.isNumber()) {
        std::ostringstream os;
        os << v.asDouble();
        return os.str();
    }
    if (v.isBool())
        return v.asBool() ? "1" : "0";
    return "";
}

struct Samples
{
    std::vector<double> values;
    std::vector<double> rss; ///< per-repeat RSS high water, bytes
};

double
meanOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

RowStats
computeStats(const std::vector<double> &values)
{
    RowStats stats;
    stats.n = values.size();
    if (values.empty())
        return stats;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    stats.mean_ns = sum / static_cast<double>(values.size());
    if (values.size() >= 2) {
        double ss = 0.0;
        for (double v : values) {
            double d = v - stats.mean_ns;
            ss += d * d;
        }
        stats.stddev_ns = std::sqrt(
            ss / static_cast<double>(values.size() - 1));
    }
    return stats;
}

std::string
fmtBytesShort(double bytes)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1);
    if (bytes >= static_cast<double>(1ull << 30))
        os << bytes / static_cast<double>(1ull << 30) << "GiB";
    else if (bytes >= static_cast<double>(1ull << 20))
        os << bytes / static_cast<double>(1ull << 20) << "MiB";
    else
        os << bytes / 1024.0 << "KiB";
    return os.str();
}

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::kOk:      return "ok";
      case Verdict::kFaster:  return "faster";
      case Verdict::kSlower:  return "REGRESSED";
      case Verdict::kOnlyInA: return "only-in-baseline";
      case Verdict::kOnlyInB: return "only-in-candidate";
    }
    return "?";
}

} // anonymous namespace

std::string
BenchRun::configHash() const
{
    std::vector<std::string> entries;
    entries.reserve(config.size());
    for (const auto &[key, value] : config) {
        if (key == "threads")
            continue; // part of the run key on its own
        entries.push_back(key + "=" + value);
    }
    std::sort(entries.begin(), entries.end());
    uint64_t hash = fnv1a(name);
    for (const auto &e : entries)
        hash = fnv1a(e, hash);
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << hash;
    return os.str();
}

std::string
BenchRun::key() const
{
    return name + "|" + configHash() + "|t" +
           std::to_string(threads) + "|" + git_rev;
}

bool
parseBenchReport(const std::string &json_text, BenchRun &out,
                 std::string *error)
{
    JsonValue doc;
    if (!parseJson(json_text, doc, error))
        return false;
    if (!doc.isObject()) {
        if (error)
            *error = "not a JSON object";
        return false;
    }
    const JsonValue *schema = doc.find("schema");
    if (!schema || schema->asString() != "dnasim.bench.v1") {
        if (error)
            *error = "not a dnasim.bench.v1 document";
        return false;
    }

    out = BenchRun();
    if (const JsonValue *v = doc.find("name"))
        out.name = v->asString();
    if (out.name.empty()) {
        if (error)
            *error = "report has no name";
        return false;
    }
    if (const JsonValue *v = doc.find("git_rev"))
        out.git_rev = v->asString();
    if (out.git_rev.empty())
        out.git_rev = "unknown";
    if (const JsonValue *v = doc.find("seed"))
        out.seed = v->asUint();
    if (const JsonValue *v = doc.find("wall_time_s"))
        out.wall_time_s = finiteOr(v->asDouble(), 0.0);
    if (const JsonValue *v = doc.find("peak_rss_bytes"))
        out.peak_rss_bytes = v->asUint();
    if (const JsonValue *v = doc.find("rss_source"))
        out.rss_source = v->asString();

    if (const JsonValue *tp = doc.find("throughput")) {
        if (const JsonValue *v = tp->find("strands_per_s"))
            out.strands_per_s = finiteOr(v->asDouble(), 0.0);
        if (const JsonValue *v = tp->find("bases_per_s"))
            out.bases_per_s = finiteOr(v->asDouble(), 0.0);
    }

    if (const JsonValue *cfg = doc.find("config")) {
        for (const auto &[key, value] : cfg->object())
            out.config.emplace_back(key, configValue(value));
    }

    out.threads = 0;
    for (const auto &[key, value] : out.config) {
        if (key == "threads")
            out.threads = std::strtoull(value.c_str(), nullptr, 10);
    }
    if (out.threads == 0) {
        if (const JsonValue *par = doc.find("parallel")) {
            if (const JsonValue *v = par->find("threads"))
                out.threads = v->asUint();
        }
    }
    if (out.threads == 0)
        out.threads = 1;

    if (const JsonValue *rows = doc.find("benchmarks")) {
        for (const auto &row : rows->array()) {
            BenchRunRow r;
            if (const JsonValue *v = row.find("name"))
                r.name = v->asString();
            if (r.name.empty())
                continue;
            if (const JsonValue *v = row.find("real_time_ns"))
                r.real_time_ns = finiteOr(v->asDouble(), 0.0);
            if (const JsonValue *v = row.find("cpu_time_ns"))
                r.cpu_time_ns = finiteOr(v->asDouble(), 0.0);
            if (const JsonValue *v = row.find("iterations"))
                r.iterations = v->asUint();
            if (const JsonValue *v = row.find("rss_high_water_bytes"))
                r.rss_high_water_bytes = v->asUint();
            out.rows.push_back(std::move(r));
        }
    }
    return true;
}

bool
loadBenchReport(const std::string &path, BenchRun &out,
                std::string *error)
{
    std::ifstream is(path);
    if (!is) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << is.rdbuf();
    if (!parseBenchReport(buffer.str(), out, error)) {
        if (error)
            *error = path + ": " + *error;
        return false;
    }
    out.source = path;
    return true;
}

std::vector<BenchRun>
loadBenchInput(const std::string &path,
               std::vector<std::string> *errors)
{
    namespace fs = std::filesystem;
    std::vector<BenchRun> runs;
    std::error_code ec;

    if (fs::is_directory(path, ec)) {
        std::vector<std::string> files;
        for (const auto &entry :
             fs::recursive_directory_iterator(path, ec)) {
            if (!entry.is_regular_file())
                continue;
            const std::string file = entry.path().filename().string();
            if (file.rfind("BENCH_", 0) == 0 &&
                entry.path().extension() == ".json")
                files.push_back(entry.path().string());
        }
        std::sort(files.begin(), files.end());
        for (const auto &file : files) {
            BenchRun run;
            std::string error;
            if (loadBenchReport(file, run, &error)) {
                runs.push_back(std::move(run));
            } else if (errors) {
                errors->push_back(error);
            }
        }
        return runs;
    }

    if (fs::path(path).extension() == ".jsonl")
        return readLedger(path, errors);

    BenchRun run;
    std::string error;
    if (loadBenchReport(path, run, &error))
        runs.push_back(std::move(run));
    else if (errors)
        errors->push_back(error);
    return runs;
}

std::string
benchRunToJsonLine(const BenchRun &run)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginObject();
    w.value("schema", "dnasim.bench.v1");
    w.value("name", run.name);
    w.value("git_rev", run.git_rev);
    w.value("seed", run.seed);
    w.value("wall_time_s", run.wall_time_s);
    w.value("peak_rss_bytes", run.peak_rss_bytes);
    w.value("rss_source", run.rss_source);
    w.beginObject("throughput");
    w.value("strands_per_s", run.strands_per_s);
    w.value("bases_per_s", run.bases_per_s);
    w.endObject();
    w.beginObject("config");
    bool has_threads = false;
    for (const auto &[key, value] : run.config) {
        w.value(key, value);
        has_threads = has_threads || key == "threads";
    }
    // Threads may have come from the "parallel" block of the source
    // report; keep it in config so the line round-trips.
    if (!has_threads)
        w.value("threads", std::to_string(run.threads));
    w.endObject();
    w.beginArray("benchmarks");
    for (const auto &row : run.rows) {
        w.beginObject();
        w.value("name", row.name);
        w.value("real_time_ns", row.real_time_ns);
        w.value("cpu_time_ns", row.cpu_time_ns);
        w.value("iterations", row.iterations);
        // Emitted only when measured so lines from pre-RSS reports
        // round-trip byte-identically.
        if (row.rss_high_water_bytes > 0)
            w.value("rss_high_water_bytes", row.rss_high_water_bytes);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return os.str();
}

bool
appendToLedger(const std::string &path, const BenchRun &run,
               bool *appended, std::string *error)
{
    if (appended)
        *appended = false;
    // Append-only with idempotent re-ingestion: an existing line
    // with the same key, seed and wall time is the same run.
    for (const auto &existing : readLedger(path, nullptr)) {
        if (existing.key() == run.key() &&
            existing.seed == run.seed &&
            existing.wall_time_s == run.wall_time_s)
            return true;
    }
    std::ofstream os(path, std::ios::app);
    if (!os) {
        if (error)
            *error = "cannot open ledger " + path;
        return false;
    }
    os << benchRunToJsonLine(run) << "\n";
    if (!os.good()) {
        if (error)
            *error = "write failed for ledger " + path;
        return false;
    }
    if (appended)
        *appended = true;
    return true;
}

std::vector<BenchRun>
readLedger(const std::string &path,
           std::vector<std::string> *errors)
{
    std::vector<BenchRun> runs;
    std::ifstream is(path);
    if (!is)
        return runs;
    std::string line;
    size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        BenchRun run;
        std::string error;
        if (parseBenchReport(line, run, &error)) {
            run.source = path + ":" + std::to_string(lineno);
            runs.push_back(std::move(run));
        } else if (errors) {
            errors->push_back(path + ":" + std::to_string(lineno) +
                              ": " + error);
        }
    }
    return runs;
}

size_t
DiffReport::regressions() const
{
    size_t n = 0;
    for (const auto &row : rows)
        n += row.verdict == Verdict::kSlower ? 1 : 0;
    return n;
}

size_t
DiffReport::improvements() const
{
    size_t n = 0;
    for (const auto &row : rows)
        n += row.verdict == Verdict::kFaster ? 1 : 0;
    return n;
}

size_t
DiffReport::memRegressions() const
{
    size_t n = 0;
    for (const auto &row : rows)
        n += row.mem_regressed ? 1 : 0;
    return n;
}

DiffReport
diffBenchRuns(const std::vector<BenchRun> &baseline,
              const std::vector<BenchRun> &candidate,
              const DiffOptions &options)
{
    // Group repeats: (bench, row) -> real-time samples, dropping
    // non-finite and non-positive values (NaN guards). RSS samples
    // ride along; zero means "not measured" and is dropped so old
    // baselines without the field never produce a bogus delta.
    auto collect = [](const std::vector<BenchRun> &runs) {
        std::map<std::pair<std::string, std::string>, Samples> out;
        for (const auto &run : runs) {
            for (const auto &row : run.rows) {
                if (!std::isfinite(row.real_time_ns) ||
                    row.real_time_ns <= 0.0)
                    continue;
                Samples &s = out[{run.name, row.name}];
                s.values.push_back(row.real_time_ns);
                if (row.rss_high_water_bytes > 0)
                    s.rss.push_back(static_cast<double>(
                        row.rss_high_water_bytes));
            }
        }
        return out;
    };
    auto a_samples = collect(baseline);
    auto b_samples = collect(candidate);

    std::map<std::pair<std::string, std::string>, int> keys;
    for (const auto &[key, s] : a_samples)
        keys[key] |= 1;
    for (const auto &[key, s] : b_samples)
        keys[key] |= 2;

    DiffReport report;
    for (const auto &[key, sides] : keys) {
        RowDelta delta;
        delta.bench = key.first;
        delta.row = key.second;
        if (sides == 1) {
            delta.a = computeStats(a_samples[key].values);
            delta.verdict = Verdict::kOnlyInA;
            report.rows.push_back(std::move(delta));
            continue;
        }
        if (sides == 2) {
            delta.b = computeStats(b_samples[key].values);
            delta.verdict = Verdict::kOnlyInB;
            report.rows.push_back(std::move(delta));
            continue;
        }
        delta.a = computeStats(a_samples[key].values);
        delta.b = computeStats(b_samples[key].values);
        delta.rel_delta =
            (delta.b.mean_ns - delta.a.mean_ns) / delta.a.mean_ns;

        // Pooled stddev over both sides; with < 3 total samples
        // there is no variance evidence and the fixed threshold is
        // the only floor (zero-variance baselines behave the same).
        double pooled = 0.0;
        const size_t na = delta.a.n, nb = delta.b.n;
        if (na + nb > 2) {
            double sa = delta.a.stddev_ns, sb = delta.b.stddev_ns;
            pooled = std::sqrt(
                (static_cast<double>(na - 1) * sa * sa +
                 static_cast<double>(nb - 1) * sb * sb) /
                static_cast<double>(na + nb - 2));
        }
        delta.noise_rel = std::max(
            options.threshold,
            options.sigma * pooled / delta.a.mean_ns);

        if (delta.rel_delta > delta.noise_rel)
            delta.verdict = Verdict::kSlower;
        else if (delta.rel_delta < -delta.noise_rel)
            delta.verdict = Verdict::kFaster;

        // Memory is compared only when both sides measured it. The
        // verdict above stays a time verdict; mem_regressed is a
        // parallel advisory flag that ok() consults when mem_gate is
        // set.
        delta.mem_a_bytes = meanOf(a_samples[key].rss);
        delta.mem_b_bytes = meanOf(b_samples[key].rss);
        delta.mem_measured =
            delta.mem_a_bytes > 0.0 && delta.mem_b_bytes > 0.0;
        if (delta.mem_measured) {
            delta.mem_rel_delta =
                (delta.mem_b_bytes - delta.mem_a_bytes) /
                delta.mem_a_bytes;
            delta.mem_regressed =
                delta.mem_rel_delta > options.mem_threshold;
        }
        report.rows.push_back(std::move(delta));
    }
    report.mem_gate = options.mem_gate;
    return report;
}

std::string
diffToText(const DiffReport &report, const DiffOptions &options)
{
    std::ostringstream os;
    os << std::left << std::setw(52) << "benchmark/row"
       << std::right << std::setw(16) << "baseline"
       << std::setw(16) << "candidate" << std::setw(10) << "delta"
       << std::setw(10) << "noise" << "  verdict\n";
    size_t unmatched = 0;
    for (const auto &row : report.rows) {
        os << std::left << std::setw(52)
           << (row.bench + "/" + row.row) << std::right;
        if (row.verdict == Verdict::kOnlyInA ||
            row.verdict == Verdict::kOnlyInB) {
            ++unmatched;
            os << std::setw(16)
               << (row.a.n ? fmtDurationNs(static_cast<uint64_t>(
                                 row.a.mean_ns))
                           : "-")
               << std::setw(16)
               << (row.b.n ? fmtDurationNs(static_cast<uint64_t>(
                                 row.b.mean_ns))
                           : "-")
               << std::setw(10) << "-" << std::setw(10) << "-"
               << "  " << verdictName(row.verdict) << "\n";
            continue;
        }
        std::ostringstream a, b, d, n;
        a << fmtDurationNs(static_cast<uint64_t>(row.a.mean_ns))
          << " (n=" << row.a.n << ")";
        b << fmtDurationNs(static_cast<uint64_t>(row.b.mean_ns))
          << " (n=" << row.b.n << ")";
        d << std::showpos << std::fixed << std::setprecision(1)
          << row.rel_delta * 100.0 << "%";
        n << std::fixed << std::setprecision(1)
          << row.noise_rel * 100.0 << "%";
        os << std::setw(16) << a.str() << std::setw(16) << b.str()
           << std::setw(10) << d.str() << std::setw(10) << n.str()
           << "  " << verdictName(row.verdict);
        if (row.mem_measured) {
            os << "  [rss " << fmtBytesShort(row.mem_a_bytes)
               << " -> " << fmtBytesShort(row.mem_b_bytes) << ", "
               << std::showpos << std::fixed << std::setprecision(1)
               << row.mem_rel_delta * 100.0 << "%" << std::noshowpos;
            if (row.mem_regressed)
                os << " MEM-REGRESSED";
            os << "]";
        }
        os << "\n";
    }
    os << "summary: " << report.rows.size() << " rows, "
       << report.regressions() << " regressions, "
       << report.improvements() << " improvements, " << unmatched
       << " unmatched, " << report.memRegressions()
       << " mem regressions"
       << (report.mem_gate ? " (gated)" : " (advisory)")
       << " (threshold " << std::fixed
       << std::setprecision(1) << options.threshold * 100.0
       << "%, sigma " << std::setprecision(1) << options.sigma
       << ", mem threshold " << std::setprecision(1)
       << options.mem_threshold * 100.0 << "%)\n";
    return os.str();
}

std::string
diffToJson(const DiffReport &report, const DiffOptions &options)
{
    std::ostringstream os;
    JsonWriter w(os, 2);
    w.beginObject();
    w.value("schema", "dnasim.benchdiff.v1");
    w.value("threshold", options.threshold);
    w.value("sigma", options.sigma);
    w.value("mem_threshold", options.mem_threshold);
    w.value("mem_gate", options.mem_gate);
    w.value("regressions", static_cast<uint64_t>(
                               report.regressions()));
    w.value("improvements", static_cast<uint64_t>(
                                report.improvements()));
    w.value("mem_regressions", static_cast<uint64_t>(
                                   report.memRegressions()));
    w.value("ok", report.ok());
    w.beginArray("rows");
    for (const auto &row : report.rows) {
        w.beginObject();
        w.value("bench", row.bench);
        w.value("row", row.row);
        w.value("n_a", static_cast<uint64_t>(row.a.n));
        w.value("mean_a_ns", row.a.mean_ns);
        w.value("stddev_a_ns", row.a.stddev_ns);
        w.value("n_b", static_cast<uint64_t>(row.b.n));
        w.value("mean_b_ns", row.b.mean_ns);
        w.value("stddev_b_ns", row.b.stddev_ns);
        w.value("rel_delta", row.rel_delta);
        w.value("noise_rel", row.noise_rel);
        w.value("verdict", verdictName(row.verdict));
        if (row.mem_measured) {
            w.value("mem_a_bytes", row.mem_a_bytes);
            w.value("mem_b_bytes", row.mem_b_bytes);
            w.value("mem_rel_delta", row.mem_rel_delta);
            w.value("mem_regressed", row.mem_regressed);
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
    return os.str();
}

std::string
ledgerSummary(const std::vector<BenchRun> &runs)
{
    struct Group
    {
        std::string name, git_rev;
        uint64_t threads = 1;
        size_t count = 0;
        double wall_min = 0.0, wall_max = 0.0;
        size_t rows = 0;
    };
    std::vector<std::string> order;
    std::map<std::string, Group> groups;
    for (const auto &run : runs) {
        const std::string key = run.key();
        auto it = groups.find(key);
        if (it == groups.end()) {
            order.push_back(key);
            Group g;
            g.name = run.name;
            g.git_rev = run.git_rev;
            g.threads = run.threads;
            g.count = 1;
            g.wall_min = g.wall_max = run.wall_time_s;
            g.rows = run.rows.size();
            groups.emplace(key, g);
            continue;
        }
        Group &g = it->second;
        ++g.count;
        g.wall_min = std::min(g.wall_min, run.wall_time_s);
        g.wall_max = std::max(g.wall_max, run.wall_time_s);
        g.rows = std::max(g.rows, run.rows.size());
    }

    std::ostringstream os;
    os << std::left << std::setw(20) << "benchmark" << std::setw(10)
       << "git-rev" << std::right << std::setw(8) << "threads"
       << std::setw(8) << "repeats" << std::setw(8) << "rows"
       << std::setw(20) << "wall min..max (s)" << "\n";
    for (const auto &key : order) {
        const Group &g = groups.at(key);
        std::ostringstream wall;
        wall << std::fixed << std::setprecision(2) << g.wall_min
             << ".." << g.wall_max;
        os << std::left << std::setw(20) << g.name << std::setw(10)
           << g.git_rev << std::right << std::setw(8) << g.threads
           << std::setw(8) << g.count << std::setw(8) << g.rows
           << std::setw(20) << wall.str() << "\n";
    }
    os << "total: " << runs.size() << " runs, " << order.size()
       << " distinct keys\n";
    return os.str();
}

} // namespace obs
} // namespace dnasim
