#include "obs/outfile.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace dnasim
{
namespace obs
{

namespace
{

void
setError(std::string *error, std::string msg)
{
    if (error)
        *error = std::move(msg);
}

} // anonymous namespace

bool
prepareOutputPath(const std::string &path, std::string *error)
{
    namespace fs = std::filesystem;
    if (path.empty()) {
        setError(error, "empty output path");
        return false;
    }
    fs::path parent = fs::path(path).parent_path();
    if (parent.empty())
        return true;
    std::error_code ec;
    if (fs::exists(parent, ec)) {
        if (!fs::is_directory(parent, ec)) {
            setError(error, "cannot write '" + path + "': '" +
                                parent.string() +
                                "' exists and is not a directory");
            return false;
        }
        return true;
    }
    fs::create_directories(parent, ec);
    if (ec) {
        setError(error, "cannot create parent directory '" +
                            parent.string() + "' for '" + path +
                            "': " + ec.message());
        return false;
    }
    return true;
}

bool
writeFileAtomic(const std::string &path, const std::string &content,
                std::string *error)
{
    if (!prepareOutputPath(path, error))
        return false;
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            setError(error, "cannot open '" + tmp +
                                "' for writing: " +
                                std::strerror(errno));
            return false;
        }
        os << content;
        os.flush();
        if (!os.good()) {
            setError(error,
                     "write to '" + tmp +
                         "' failed: " + std::strerror(errno));
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        setError(error, "cannot rename '" + tmp + "' to '" + path +
                            "': " + std::strerror(errno));
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

AtomicFile::~AtomicFile()
{
    if (isOpen())
        abort();
}

bool
AtomicFile::open(const std::string &path, std::string *error)
{
    if (isOpen())
        abort();
    if (!prepareOutputPath(path, error))
        return false;
    path_ = path;
    tmp_ = path + ".tmp";
    out_.open(tmp_, std::ios::binary | std::ios::trunc);
    if (!out_) {
        setError(error, "cannot open '" + tmp_ +
                            "' for writing: " + std::strerror(errno));
        return false;
    }
    return true;
}

bool
AtomicFile::commit(std::string *error)
{
    if (!isOpen()) {
        setError(error, "commit on a closed AtomicFile");
        return false;
    }
    out_.flush();
    const bool wrote_ok = out_.good();
    out_.close();
    if (!wrote_ok || out_.fail()) {
        setError(error, "write to '" + tmp_ +
                            "' failed: " + std::strerror(errno));
        std::remove(tmp_.c_str());
        return false;
    }
    if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
        setError(error, "cannot rename '" + tmp_ + "' to '" + path_ +
                            "': " + std::strerror(errno));
        std::remove(tmp_.c_str());
        return false;
    }
    return true;
}

void
AtomicFile::abort()
{
    if (!isOpen())
        return;
    out_.close();
    std::remove(tmp_.c_str());
}

} // namespace obs
} // namespace dnasim
