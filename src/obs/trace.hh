/**
 * @file
 * Scoped tracing with Chrome trace-event / Perfetto JSON output.
 *
 * ScopedTrace marks a span; when tracing is enabled the span is
 * recorded as a complete ("X") event with category, optional JSON
 * args and the thread CPU time consumed inside the span, and the
 * buffer serializes to a file that loads directly in chrome://tracing
 * or https://ui.perfetto.dev. When tracing is disabled (the default)
 * a ScopedTrace costs one relaxed atomic load, so spans can stay
 * compiled into hot-ish paths.
 *
 * The recorded spans are also the raw material of the hierarchical
 * phase profiler (obs/profile.hh), which nests them into an
 * inclusive/exclusive call tree at snapshot time.
 */

#ifndef DNASIM_OBS_TRACE_HH
#define DNASIM_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace dnasim
{
namespace obs
{

/**
 * CPU time consumed by the calling thread, in nanoseconds (0 where
 * no thread CPU clock is available).
 */
uint64_t threadCpuNs();

/** One complete span, as consumed by the phase profiler. */
struct TraceSpan
{
    std::string name;
    std::string cat;
    uint64_t ts_ns = 0;  ///< start, relative to the enable() origin
    uint64_t dur_ns = 0; ///< wall duration
    uint64_t cpu_ns = 0; ///< thread CPU time inside the span
    uint32_t tid = 0;
};

/** The process-wide trace buffer. */
class Trace
{
  public:
    static Trace &global();

    /** Start capturing; resets the clock origin and the buffer. */
    void enable();
    void disable();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Record a complete span. @p ts_ns is the span start relative to
     * the enable() origin; @p args_json, if non-empty, must be a
     * valid JSON object literal; @p cpu_ns is the thread CPU time
     * consumed inside the span (0 when not measured).
     */
    void recordComplete(std::string name, std::string cat,
                        uint64_t ts_ns, uint64_t dur_ns,
                        std::string args_json = "",
                        uint64_t cpu_ns = 0);

    /** Record an instant event at the current time. */
    void recordInstant(std::string name, std::string cat);

    /** Nanoseconds since enable() (0 when disabled). */
    uint64_t nowNs() const;

    size_t numEvents() const;

    /** Copy of the buffered complete ('X') spans. */
    std::vector<TraceSpan> completeSpans() const;

    /** Serialize as {"traceEvents": [...]} JSON. */
    void writeJson(std::ostream &os) const;

    /** Write the JSON to @p path; returns false on I/O failure. */
    bool writeFile(const std::string &path) const;

    /**
     * Arrange for the trace to be written to @p path at process exit
     * (std::atexit), so an early std::exit or a failure after the
     * trace was enabled still yields a loadable JSON file. The
     * normal shutdown path calls flushExitFile() itself to observe
     * the result; the atexit hook is then a no-op.
     */
    void setExitFlushPath(const std::string &path);

    /**
     * Write the exit-flush file now, once. Returns false only on an
     * actual I/O failure (no path configured or already flushed is
     * success).
     */
    bool flushExitFile();

    /** Drop all buffered events. */
    void clear();

  private:
    struct Event
    {
        std::string name;
        std::string cat;
        std::string args;
        char ph;
        uint64_t ts_ns;
        uint64_t dur_ns;
        uint64_t cpu_ns;
        uint32_t tid;
    };

    mutable std::mutex mutex_;
    std::vector<Event> events_;
    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point origin_;

    std::mutex flush_mutex_;
    std::string exit_path_;
    bool exit_registered_ = false;
    bool exit_flushed_ = false;
};

/**
 * RAII trace span. Records nothing when tracing is disabled; the
 * name and category must outlive the scope (string literals).
 */
class ScopedTrace
{
  public:
    explicit ScopedTrace(const char *name, const char *cat = "dnasim")
        : ScopedTrace(name, cat, std::string())
    {}

    ScopedTrace(const char *name, const char *cat,
                std::string args_json)
        : name_(name), cat_(cat)
    {
        Trace &trace = Trace::global();
        active_ = trace.enabled();
        if (active_) {
            args_ = std::move(args_json);
            start_ns_ = trace.nowNs();
            start_cpu_ns_ = threadCpuNs();
        }
    }

    ScopedTrace(const ScopedTrace &) = delete;
    ScopedTrace &operator=(const ScopedTrace &) = delete;

    ~ScopedTrace()
    {
        if (!active_)
            return;
        Trace &trace = Trace::global();
        if (!trace.enabled())
            return; // disabled mid-span; drop it
        uint64_t end_ns = trace.nowNs();
        uint64_t end_cpu_ns = threadCpuNs();
        trace.recordComplete(name_, cat_, start_ns_,
                             end_ns - start_ns_, std::move(args_),
                             end_cpu_ns - start_cpu_ns_);
    }

  private:
    const char *name_;
    const char *cat_;
    std::string args_;
    uint64_t start_ns_ = 0;
    uint64_t start_cpu_ns_ = 0;
    bool active_ = false;
};

} // namespace obs
} // namespace dnasim

#endif // DNASIM_OBS_TRACE_HH
