/**
 * @file
 * Scoped tracing with Chrome trace-event / Perfetto JSON output.
 *
 * ScopedTrace marks a span; when tracing is enabled the span is
 * recorded as a complete ("X") event with category and optional
 * JSON args, and the buffer serializes to a file that loads directly
 * in chrome://tracing or https://ui.perfetto.dev. When tracing is
 * disabled (the default) a ScopedTrace costs one relaxed atomic
 * load, so spans can stay compiled into hot-ish paths.
 */

#ifndef DNASIM_OBS_TRACE_HH
#define DNASIM_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace dnasim
{
namespace obs
{

/** The process-wide trace buffer. */
class Trace
{
  public:
    static Trace &global();

    /** Start capturing; resets the clock origin and the buffer. */
    void enable();
    void disable();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Record a complete span. @p ts_ns is the span start relative to
     * the enable() origin; @p args_json, if non-empty, must be a
     * valid JSON object literal.
     */
    void recordComplete(std::string name, std::string cat,
                        uint64_t ts_ns, uint64_t dur_ns,
                        std::string args_json = "");

    /** Record an instant event at the current time. */
    void recordInstant(std::string name, std::string cat);

    /** Nanoseconds since enable() (0 when disabled). */
    uint64_t nowNs() const;

    size_t numEvents() const;

    /** Serialize as {"traceEvents": [...]} JSON. */
    void writeJson(std::ostream &os) const;

    /** Write the JSON to @p path; returns false on I/O failure. */
    bool writeFile(const std::string &path) const;

    /** Drop all buffered events. */
    void clear();

  private:
    struct Event
    {
        std::string name;
        std::string cat;
        std::string args;
        char ph;
        uint64_t ts_ns;
        uint64_t dur_ns;
        uint32_t tid;
    };

    mutable std::mutex mutex_;
    std::vector<Event> events_;
    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point origin_;
};

/**
 * RAII trace span. Records nothing when tracing is disabled; the
 * name and category must outlive the scope (string literals).
 */
class ScopedTrace
{
  public:
    explicit ScopedTrace(const char *name, const char *cat = "dnasim")
        : ScopedTrace(name, cat, std::string())
    {}

    ScopedTrace(const char *name, const char *cat,
                std::string args_json)
        : name_(name), cat_(cat)
    {
        Trace &trace = Trace::global();
        active_ = trace.enabled();
        if (active_) {
            args_ = std::move(args_json);
            start_ns_ = trace.nowNs();
        }
    }

    ScopedTrace(const ScopedTrace &) = delete;
    ScopedTrace &operator=(const ScopedTrace &) = delete;

    ~ScopedTrace()
    {
        if (!active_)
            return;
        Trace &trace = Trace::global();
        if (!trace.enabled())
            return; // disabled mid-span; drop it
        uint64_t end_ns = trace.nowNs();
        trace.recordComplete(name_, cat_, start_ns_,
                             end_ns - start_ns_, std::move(args_));
    }

  private:
    const char *name_;
    const char *cat_;
    std::string args_;
    uint64_t start_ns_ = 0;
    bool active_ = false;
};

} // namespace obs
} // namespace dnasim

#endif // DNASIM_OBS_TRACE_HH
