/**
 * @file
 * A structured event journal for discrete run happenings: phase
 * transitions (progress scopes opening and closing), warnings, and
 * ad-hoc markers. Events carry a monotonic timestamp and a small set
 * of string fields; the journal is an append-only in-memory log with
 * stable sequence numbers, so streaming consumers (the telemetry
 * sampler) can drain incrementally with eventsSince() and never see
 * an event twice or miss one.
 *
 * Emission is cheap (one mutex-protected push) and always on; the
 * journal is bounded (oldest events are dropped past ~64k) so a
 * long-lived daemon cannot grow it without bound.
 */

#ifndef DNASIM_OBS_EVENTS_HH
#define DNASIM_OBS_EVENTS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dnasim
{
namespace obs
{

/** One journal entry. */
struct Event
{
    uint64_t seq = 0;     ///< global sequence number, from 1
    uint64_t ts_ns = 0;   ///< monotonic time since process start
    std::string kind;     ///< "phase_begin", "phase_end", "warning", ...
    std::string name;     ///< subject (phase name, warning text, ...)
    /** Optional key/value payload, exported verbatim. */
    std::vector<std::pair<std::string, std::string>> fields;
};

/** The process-wide journal. */
class EventJournal
{
  public:
    static EventJournal &global();

    /** Append an event; stamps seq and ts_ns. Returns the seq. */
    uint64_t emit(std::string kind, std::string name,
                  std::vector<std::pair<std::string, std::string>>
                      fields = {});

    /**
     * Events with seq > @p after_seq, oldest first. Pass the last
     * seq you saw (0 initially) to drain incrementally.
     */
    std::vector<Event> eventsSince(uint64_t after_seq) const;

    /** Sequence number of the newest event (0 when empty). */
    uint64_t lastSeq() const;

    /** Drop all buffered events (test isolation). */
    void clear();

  private:
    EventJournal() = default;
};

/** Convenience: emit into the global journal. */
uint64_t emitEvent(std::string kind, std::string name,
                   std::vector<std::pair<std::string, std::string>>
                       fields = {});

/** Monotonic nanoseconds since process start (journal clock). */
uint64_t monotonicNowNs();

} // namespace obs
} // namespace dnasim

#endif // DNASIM_OBS_EVENTS_HH
