/**
 * @file
 * OpenMetrics / Prometheus text exposition of a stats snapshot.
 *
 * snapshotToOpenMetrics() renders a Snapshot (plus optional progress
 * state and RSS) as an OpenMetrics text document: every dnasim
 * instrument becomes a `dnasim_`-prefixed metric family (dots in the
 * dotted stat names map to underscores), counters gain the `_total`
 * suffix, timers and distributions export as summaries with
 * p50/p90/p99/p999 quantile labels out of the HDR histograms, and
 * progress scopes export as gauges labelled by phase. The document
 * ends with the mandatory `# EOF` terminator.
 *
 * OpenMetricsSink writes that document on every sampler tick through
 * writeFileAtomic(), so the target file always holds one complete,
 * parseable exposition — the contract node_exporter's textfile
 * collector expects of *.prom files.
 */

#ifndef DNASIM_OBS_OPENMETRICS_HH
#define DNASIM_OBS_OPENMETRICS_HH

#include <string>
#include <vector>

#include "obs/snapshot.hh"

namespace dnasim
{
namespace obs
{

/** "channel.errors.sub" -> "dnasim_channel_errors_sub". */
std::string openMetricsName(const std::string &stat_name);

/** Escape a label value or HELP text per the exposition format. */
std::string openMetricsEscape(const std::string &s);

/**
 * Render @p snap as a complete OpenMetrics text document.
 * @p progress and @p rss_bytes add the live-run gauges; pass empty/0
 * for a plain end-of-run exposition.
 */
std::string
snapshotToOpenMetrics(const Snapshot &snap,
                      const std::vector<ProgressState> &progress = {},
                      uint64_t rss_bytes = 0);

/** Sink that atomically rewrites @p path on every sampler tick. */
class OpenMetricsSink : public TelemetrySink
{
  public:
    explicit OpenMetricsSink(std::string path);

    void onSample(const IntervalSample &sample) override;
    void close() override;

    /** False after any write failure (diagnostic already warned). */
    bool ok() const { return ok_; }

  private:
    std::string path_;
    bool ok_ = true;
    bool warned_ = false;
};

} // namespace obs
} // namespace dnasim

#endif // DNASIM_OBS_OPENMETRICS_HH
