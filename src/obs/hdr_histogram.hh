/**
 * @file
 * A log-bucketed HDR-style histogram for latency-shaped values.
 *
 * Values are binned into octaves (powers of two), each octave split
 * into 64 linear sub-buckets, so the recorded value is always within
 * 1/64 (~1.6%) of its bucket's lower bound across the whole uint64
 * range — accurate percentiles from nanoseconds to minutes at
 * bounded memory. Values below 64 land in unit-width buckets and are
 * represented exactly.
 *
 * The bucket array grows on demand up to a hard cap of ~3.8k buckets
 * (64 octaves x 64 sub-buckets), so a histogram that only ever sees
 * small values stays small. Histograms with the same layout merge by
 * bucket-wise addition, which is how per-shard recordings combine
 * into one mergeable percentile source.
 *
 * Not thread-safe; wrap in a mutex (obs::Distribution, obs::Timer)
 * or keep one per thread and merge.
 */

#ifndef DNASIM_OBS_HDR_HISTOGRAM_HH
#define DNASIM_OBS_HDR_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace dnasim
{
namespace obs
{

class HdrHistogram
{
  public:
    /** Sub-buckets per octave; also the size of the exact region. */
    static constexpr uint64_t kSubBuckets = 64;
    static constexpr uint32_t kSubBucketBits = 6;

    HdrHistogram() = default;

    /** Bucket index of @p value (dense, monotone in value). */
    static uint32_t bucketIndex(uint64_t value);

    /** Smallest value mapping to bucket @p index. */
    static uint64_t bucketLowerBound(uint32_t index);

    /** Add @p weight observations of @p value. */
    void record(uint64_t value, uint64_t weight = 1);

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    uint64_t min() const { return count_ == 0 ? 0 : min_; }
    uint64_t max() const { return count_ == 0 ? 0 : max_; }
    double mean() const;

    /**
     * Smallest bucket lower bound whose cumulative mass reaches
     * quantile @p q in (0, 1]; 0 when empty. Exact for values < 64,
     * within one log-bucket (<= ~1.6% relative) above. The exact
     * observed min/max clamp the ends, so percentile(1.0) == max().
     */
    uint64_t percentile(double q) const;

    /** Bucket-wise accumulate @p other into this histogram. */
    void merge(const HdrHistogram &other);

    /** Reset to empty, keeping allocated capacity. */
    void clear();

    bool empty() const { return count_ == 0; }

    /** Raw bucket counts (index -> count), for exporters. */
    const std::vector<uint64_t> &buckets() const { return counts_; }

  private:
    std::vector<uint64_t> counts_;
    uint64_t count_ = 0;
    double sum_ = 0.0;
    uint64_t min_ = 0;
    uint64_t max_ = 0;
};

} // namespace obs
} // namespace dnasim

#endif // DNASIM_OBS_HDR_HISTOGRAM_HH
