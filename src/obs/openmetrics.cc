#include "obs/openmetrics.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "base/logging.hh"
#include "obs/outfile.hh"

namespace dnasim
{
namespace obs
{

namespace
{

std::string
fmtDouble(double v)
{
    if (!std::isfinite(v))
        return v > 0 ? "+Inf" : (v < 0 ? "-Inf" : "NaN");
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
typeAndHelp(std::ostream &os, const std::string &name,
            const char *type, const std::string &help)
{
    os << "# TYPE " << name << " " << type << "\n";
    if (!help.empty())
        os << "# HELP " << name << " " << openMetricsEscape(help)
           << "\n";
}

void
summary(std::ostream &os, const std::string &name,
        const std::string &help, uint64_t count, double sum,
        double scale, uint64_t p50, uint64_t p90, uint64_t p99,
        uint64_t p999)
{
    typeAndHelp(os, name, "summary", help);
    auto q = [&](const char *label, uint64_t v) {
        os << name << "{quantile=\"" << label << "\"} "
           << fmtDouble(static_cast<double>(v) * scale) << "\n";
    };
    q("0.5", p50);
    q("0.9", p90);
    q("0.99", p99);
    q("0.999", p999);
    os << name << "_count " << count << "\n";
    os << name << "_sum " << fmtDouble(sum * scale) << "\n";
}

} // anonymous namespace

std::string
openMetricsName(const std::string &stat_name)
{
    std::string out = "dnasim_";
    for (char c : stat_name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

std::string
openMetricsEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '"':
            out += "\\\"";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
snapshotToOpenMetrics(const Snapshot &snap,
                      const std::vector<ProgressState> &progress,
                      uint64_t rss_bytes)
{
    std::ostringstream os;

    for (const auto &c : snap.counters) {
        std::string name = openMetricsName(c.name);
        typeAndHelp(os, name, "counter", c.desc);
        os << name << "_total " << c.value << "\n";
    }

    for (const auto &g : snap.gauges) {
        std::string name = openMetricsName(g.name);
        typeAndHelp(os, name, "gauge", g.desc);
        os << name << " " << g.value << "\n";
    }

    // Timers export in seconds per Prometheus convention; the HDR
    // quantiles are recorded in ns, so scale by 1e-9.
    for (const auto &t : snap.timers) {
        std::string name = openMetricsName(t.name) + "_seconds";
        summary(os, name, t.desc, t.count,
                static_cast<double>(t.total_ns), 1e-9, t.p50_ns,
                t.p90_ns, t.p99_ns, t.p999_ns);
    }

    for (const auto &d : snap.distributions) {
        std::string name = openMetricsName(d.name);
        summary(os, name, d.desc, d.count, d.sum, 1.0, d.p50, d.p90,
                d.p99, d.p999);
    }

    if (!progress.empty()) {
        typeAndHelp(os, "dnasim_progress_items_done", "gauge",
                    "items completed by the active phase");
        for (const auto &p : progress) {
            os << "dnasim_progress_items_done{phase=\""
               << openMetricsEscape(p.name) << "\"} " << p.done
               << "\n";
        }
        typeAndHelp(os, "dnasim_progress_items_total", "gauge",
                    "items expected by the active phase (0 = "
                    "unknown)");
        for (const auto &p : progress) {
            os << "dnasim_progress_items_total{phase=\""
               << openMetricsEscape(p.name) << "\"} " << p.total
               << "\n";
        }
    }

    if (rss_bytes > 0) {
        typeAndHelp(os, "dnasim_process_resident_memory_bytes",
                    "gauge", "resident set size");
        os << "dnasim_process_resident_memory_bytes " << rss_bytes
           << "\n";
    }

    os << "# EOF\n";
    return os.str();
}

OpenMetricsSink::OpenMetricsSink(std::string path)
    : path_(std::move(path))
{
    std::string error;
    if (!prepareOutputPath(path_, &error)) {
        warn("metrics: ", error);
        ok_ = false;
        warned_ = true;
    }
}

void
OpenMetricsSink::onSample(const IntervalSample &sample)
{
    std::string doc = snapshotToOpenMetrics(
        sample.snap, sample.progress, sample.rss_bytes);
    std::string error;
    if (!writeFileAtomic(path_, doc, &error)) {
        ok_ = false;
        if (!warned_) {
            warn("metrics: ", error);
            warned_ = true;
        }
    }
}

void
OpenMetricsSink::close()
{
}

} // namespace obs
} // namespace dnasim
