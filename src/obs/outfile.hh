/**
 * @file
 * Output-file plumbing shared by every exporter that takes a --*-out
 * path (--stats-out, --trace-out, --metrics-out, --telemetry-out):
 *
 *  - prepareOutputPath() creates missing parent directories up
 *    front, so "out/run1/stats.json" works without a manual mkdir,
 *    and turns the previously opaque open failure into a diagnostic
 *    naming the path and the errno cause.
 *  - writeFileAtomic() writes through a temporary sibling and
 *    renames it into place, so readers polling the file (node_
 *    exporter's textfile collector, `dnasim watch`) never observe a
 *    half-written document.
 */

#ifndef DNASIM_OBS_OUTFILE_HH
#define DNASIM_OBS_OUTFILE_HH

#include <fstream>
#include <string>

namespace dnasim
{
namespace obs
{

/**
 * Create the missing parent directories of @p path. Returns false
 * (and sets @p error when non-null) when a parent cannot be created;
 * the error names the directory and the cause.
 */
bool prepareOutputPath(const std::string &path,
                       std::string *error = nullptr);

/**
 * Atomically replace @p path with @p content: parent directories are
 * created, the content goes to "<path>.tmp", and a rename publishes
 * it. Returns false (and sets @p error) on any failure.
 */
bool writeFileAtomic(const std::string &path,
                     const std::string &content,
                     std::string *error = nullptr);

/**
 * The streaming counterpart of writeFileAtomic() for artifacts too
 * large to assemble in one string (cluster dumps, lineage JSONL,
 * checkpoint arrays): open() starts "<path>.tmp", the caller streams
 * into stream(), and commit() flushes and renames it into place.
 * Destruction without commit() — including mid-write process death,
 * since the target path is only ever touched by the final rename —
 * leaves no torn file at the target, only a stale .tmp.
 */
class AtomicFile
{
  public:
    AtomicFile() = default;
    ~AtomicFile();

    AtomicFile(const AtomicFile &) = delete;
    AtomicFile &operator=(const AtomicFile &) = delete;

    /**
     * Create parent directories and open "<path>.tmp" (binary,
     * truncated). Returns false and sets @p error on failure.
     */
    bool open(const std::string &path, std::string *error = nullptr);

    bool isOpen() const { return out_.is_open(); }

    /** The stream to write through (valid while open). */
    std::ofstream &stream() { return out_; }

    /**
     * Flush, close and rename over the target path. Returns false
     * (and sets @p error) if any write failed — including earlier
     * stream errors — in which case the temporary is removed and
     * the target is untouched.
     */
    bool commit(std::string *error = nullptr);

    /** Close and remove the temporary without publishing. */
    void abort();

  private:
    std::string path_;
    std::string tmp_;
    std::ofstream out_;
};

} // namespace obs
} // namespace dnasim

#endif // DNASIM_OBS_OUTFILE_HH
