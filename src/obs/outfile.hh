/**
 * @file
 * Output-file plumbing shared by every exporter that takes a --*-out
 * path (--stats-out, --trace-out, --metrics-out, --telemetry-out):
 *
 *  - prepareOutputPath() creates missing parent directories up
 *    front, so "out/run1/stats.json" works without a manual mkdir,
 *    and turns the previously opaque open failure into a diagnostic
 *    naming the path and the errno cause.
 *  - writeFileAtomic() writes through a temporary sibling and
 *    renames it into place, so readers polling the file (node_
 *    exporter's textfile collector, `dnasim watch`) never observe a
 *    half-written document.
 */

#ifndef DNASIM_OBS_OUTFILE_HH
#define DNASIM_OBS_OUTFILE_HH

#include <string>

namespace dnasim
{
namespace obs
{

/**
 * Create the missing parent directories of @p path. Returns false
 * (and sets @p error when non-null) when a parent cannot be created;
 * the error names the directory and the cause.
 */
bool prepareOutputPath(const std::string &path,
                       std::string *error = nullptr);

/**
 * Atomically replace @p path with @p content: parent directories are
 * created, the content goes to "<path>.tmp", and a rename publishes
 * it. Returns false (and sets @p error) on any failure.
 */
bool writeFileAtomic(const std::string &path,
                     const std::string &content,
                     std::string *error = nullptr);

} // namespace obs
} // namespace dnasim

#endif // DNASIM_OBS_OUTFILE_HH
