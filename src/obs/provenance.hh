/**
 * @file
 * Build/run provenance stamped into every machine-readable artifact
 * (`dnasim.stats.v1`, `dnasim.telemetry.v1`, `dnasim.bench.v1`,
 * `dnasim.lineage.v1`): git revision, compiler, active SIMD tier and
 * worker-thread count. Ledger and diff tooling keys on this block
 * uniformly instead of re-deriving it per schema.
 *
 * Layering: obs sits below the par and align libraries, so the
 * SIMD tier and thread count cannot be pulled from them here —
 * instead align/simd_dispatch and par/thread_pool push their
 * resolved values through the setters below. Until a producer
 * publishes, the fields read "unknown"/0 — a correct statement for
 * a process that never touched the corresponding subsystem.
 */

#ifndef DNASIM_OBS_PROVENANCE_HH
#define DNASIM_OBS_PROVENANCE_HH

#include <cstdint>
#include <string>

namespace dnasim
{
namespace obs
{

class JsonWriter;

/** The provenance block of one process. */
struct BuildProvenance
{
    std::string git_rev;   ///< short source revision or "unknown"
    std::string compiler;  ///< e.g. "gcc 13.2.0"
    std::string simd_tier; ///< "scalar"/"avx2"/"avx512"/"unknown"
    uint64_t threads = 0;  ///< configured worker threads (0 unset)
};

/**
 * Short git revision of the source tree (resolved once per process;
 * "unknown" outside a git checkout or when the build did not embed
 * the source path).
 */
std::string gitRevision();

/** Compiler id and version this binary was built with. */
std::string compilerVersion();

/**
 * Publish the resolved SIMD tier (called by align/simd_dispatch on
 * every batch dispatch, so this is hot-path cheap: one relaxed
 * store). @p tier must point to storage with static duration — the
 * dispatcher's tier-name literals qualify.
 */
void setProvenanceSimdTier(const char *tier);

/** Publish the worker-thread count (called by par/thread_pool). */
void setProvenanceThreads(uint64_t threads);

/** Snapshot the current provenance. */
BuildProvenance buildProvenance();

/**
 * Emit the provenance snapshot as an object member named @p key of
 * the writer's currently open object — the shared header block of
 * every artifact writer.
 */
void writeProvenance(JsonWriter &w, const char *key = "provenance");

} // namespace obs
} // namespace dnasim

#endif // DNASIM_OBS_PROVENANCE_HH
