#include "obs/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/logging.hh"

namespace dnasim
{
namespace obs
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter(std::ostream &os, int indent)
    : os_(os), indent_(indent)
{}

void
JsonWriter::newlineIndent()
{
    if (indent_ <= 0)
        return;
    os_ << '\n';
    for (size_t i = 0; i < stack_.size() * indent_; ++i)
        os_ << ' ';
}

void
JsonWriter::prefix(const std::string &key)
{
    if (!stack_.empty()) {
        if (stack_.back() > 0)
            os_ << ',';
        ++stack_.back();
        newlineIndent();
    }
    if (!key.empty())
        os_ << '"' << jsonEscape(key) << "\":" << (indent_ > 0 ? " " : "");
}

JsonWriter &
JsonWriter::beginObject(const std::string &key)
{
    prefix(key);
    os_ << '{';
    stack_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    DNASIM_ASSERT(!stack_.empty(), "endObject() with nothing open");
    bool had_values = stack_.back() > 0;
    stack_.pop_back();
    if (had_values)
        newlineIndent();
    os_ << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray(const std::string &key)
{
    prefix(key);
    os_ << '[';
    stack_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    DNASIM_ASSERT(!stack_.empty(), "endArray() with nothing open");
    bool had_values = stack_.back() > 0;
    stack_.pop_back();
    if (had_values)
        newlineIndent();
    os_ << ']';
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &key, const std::string &v)
{
    prefix(key);
    os_ << '"' << jsonEscape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &key, const char *v)
{
    return value(key, std::string(v));
}

JsonWriter &
JsonWriter::value(const std::string &key, uint64_t v)
{
    prefix(key);
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &key, int64_t v)
{
    prefix(key);
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &key, double v)
{
    prefix(key);
    if (!std::isfinite(v)) {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        os_ << "null";
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &key, bool v)
{
    prefix(key);
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::rawValue(const std::string &key, const std::string &raw)
{
    prefix(key);
    os_ << raw;
    return *this;
}

bool
JsonValue::asBool(bool fallback) const
{
    return kind_ == Kind::Bool ? bool_ : fallback;
}

double
JsonValue::asDouble(double fallback) const
{
    return kind_ == Kind::Number ? num_ : fallback;
}

uint64_t
JsonValue::asUint(uint64_t fallback) const
{
    if (kind_ != Kind::Number || !(num_ >= 0.0))
        return fallback;
    return static_cast<uint64_t>(num_);
}

const std::string &
JsonValue::asString() const
{
    static const std::string empty;
    return kind_ == Kind::String ? str_ : empty;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

/** Recursive-descent parser over a bounded-depth document. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {}

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing garbage");
        return true;
    }

  private:
    static constexpr size_t kMaxDepth = 64;

    bool
    fail(const std::string &why)
    {
        if (error_) {
            *error_ = why + " at offset " + std::to_string(pos_);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    bool
    parseValue(JsonValue &out, size_t depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out.kind_ = JsonValue::Kind::String;
            return parseString(out.str_);
          case 't':
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = true;
            return literal("true") || fail("bad literal");
          case 'f':
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = false;
            return literal("false") || fail("bad literal");
          case 'n':
            out.kind_ = JsonValue::Kind::Null;
            return literal("null") || fail("bad literal");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out, size_t depth)
    {
        out.kind_ = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.obj_.emplace_back(std::move(key), std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue &out, size_t depth)
    {
        out.kind_ = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.arr_.push_back(std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            if (pos_ + 1 >= text_.size())
                return fail("unterminated escape");
            char esc = text_[pos_ + 1];
            pos_ += 2;
            switch (esc) {
              case '"':  out += '"';  break;
              case '\\': out += '\\'; break;
              case '/':  out += '/';  break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_ + i];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                pos_ += 4;
                // UTF-8 encode the BMP code point (surrogate pairs
                // outside the report schemas' character set are
                // passed through as two 3-byte sequences).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        // Validate against the JSON grammar before handing the span
        // to strtod: strtod alone also accepts "nan", "inf", hex
        // floats and leading zeros, none of which are JSON.
        const size_t start = pos_;
        auto digit = [&] {
            return pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9';
        };
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        if (!digit()) {
            pos_ = start;
            return fail("expected value");
        }
        if (text_[pos_] == '0') {
            ++pos_;
            if (digit()) {
                pos_ = start;
                return fail("leading zero in number");
            }
        } else {
            while (digit())
                ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (!digit()) {
                pos_ = start;
                return fail("digit expected after decimal point");
            }
            while (digit())
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (!digit()) {
                pos_ = start;
                return fail("digit expected in exponent");
            }
            while (digit())
                ++pos_;
        }
        out.kind_ = JsonValue::Kind::Number;
        out.num_ = std::strtod(text_.c_str() + start, nullptr);
        return true;
    }

    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;
};

bool
parseJson(const std::string &text, JsonValue &out,
          std::string *error)
{
    out = JsonValue();
    return JsonParser(text, error).parse(out);
}

} // namespace obs
} // namespace dnasim
