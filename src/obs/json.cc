#include "obs/json.hh"

#include <cmath>
#include <cstdio>

#include "base/logging.hh"

namespace dnasim
{
namespace obs
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter(std::ostream &os, int indent)
    : os_(os), indent_(indent)
{}

void
JsonWriter::newlineIndent()
{
    if (indent_ <= 0)
        return;
    os_ << '\n';
    for (size_t i = 0; i < stack_.size() * indent_; ++i)
        os_ << ' ';
}

void
JsonWriter::prefix(const std::string &key)
{
    if (!stack_.empty()) {
        if (stack_.back() > 0)
            os_ << ',';
        ++stack_.back();
        newlineIndent();
    }
    if (!key.empty())
        os_ << '"' << jsonEscape(key) << "\":" << (indent_ > 0 ? " " : "");
}

JsonWriter &
JsonWriter::beginObject(const std::string &key)
{
    prefix(key);
    os_ << '{';
    stack_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    DNASIM_ASSERT(!stack_.empty(), "endObject() with nothing open");
    bool had_values = stack_.back() > 0;
    stack_.pop_back();
    if (had_values)
        newlineIndent();
    os_ << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray(const std::string &key)
{
    prefix(key);
    os_ << '[';
    stack_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    DNASIM_ASSERT(!stack_.empty(), "endArray() with nothing open");
    bool had_values = stack_.back() > 0;
    stack_.pop_back();
    if (had_values)
        newlineIndent();
    os_ << ']';
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &key, const std::string &v)
{
    prefix(key);
    os_ << '"' << jsonEscape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &key, const char *v)
{
    return value(key, std::string(v));
}

JsonWriter &
JsonWriter::value(const std::string &key, uint64_t v)
{
    prefix(key);
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &key, int64_t v)
{
    prefix(key);
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &key, double v)
{
    prefix(key);
    if (!std::isfinite(v)) {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        os_ << "null";
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &key, bool v)
{
    prefix(key);
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::rawValue(const std::string &key, const std::string &raw)
{
    prefix(key);
    os_ << raw;
    return *this;
}

} // namespace obs
} // namespace dnasim
