#include "obs/stats.hh"

#include <algorithm>
#include <array>
#include <map>

#include "base/logging.hh"

namespace dnasim
{
namespace obs
{
namespace detail
{

namespace
{

/** Slots per allocation chunk; chunk addresses never move. */
constexpr size_t kChunkSlots = 64;

struct Chunk
{
    std::array<std::atomic<uint64_t>, kChunkSlots> slots{};
};

} // anonymous namespace

/**
 * One thread's private counter shards. Only the owning thread writes
 * slot values (relaxed stores); structural growth and cross-thread
 * reads are serialized by the registry mutex. Chunks are allocated
 * out-of-line so growing the chunk table never moves live slots.
 */
struct ThreadBlock
{
    std::vector<std::unique_ptr<Chunk>> chunks;
    size_t capacity = 0; ///< chunks.size() * kChunkSlots; owner-read

    std::atomic<uint64_t> &
    slot(uint32_t id)
    {
        return chunks[id / kChunkSlots]->slots[id % kChunkSlots];
    }

    uint64_t
    read(uint32_t id) const
    {
        return chunks[id / kChunkSlots]
            ->slots[id % kChunkSlots]
            .load(std::memory_order_relaxed);
    }
};

struct RegistryCore : std::enable_shared_from_this<RegistryCore>
{
    const uint64_t uid;
    mutable std::mutex mutex;

    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Timer>> timers;
    std::map<std::string, std::unique_ptr<Distribution>> distributions;

    uint32_t next_slot = 0;
    std::vector<std::shared_ptr<ThreadBlock>> blocks;
    /** Merged slot values of threads that have exited. */
    std::vector<uint64_t> retired;

    RegistryCore();

    ThreadBlock &localBlock();
    void growBlock(ThreadBlock &block, uint32_t slot);
    void retire(const std::shared_ptr<ThreadBlock> &block);
    uint64_t sumSlot(uint32_t slot) const;
    uint64_t sumSlotLocked(uint32_t slot) const;

    void
    checkNameFree(const std::string &name, const char *kind) const
    {
        auto taken = [&](auto &m) { return m.count(name) > 0; };
        if (taken(counters) || taken(gauges) || taken(timers) ||
            taken(distributions)) {
            DNASIM_FATAL("stat '", name, "' already registered with a "
                         "different kind (wanted ", kind, ")");
        }
    }
};

namespace
{

std::atomic<uint64_t> next_registry_uid{1};

/** One thread's registrations, torn down (merged) on thread exit. */
struct TlsEntry
{
    uint64_t uid;
    std::shared_ptr<ThreadBlock> block;
    std::weak_ptr<RegistryCore> core;
};

struct TlsState
{
    std::vector<TlsEntry> entries;

    ~TlsState()
    {
        for (auto &e : entries) {
            if (auto core = e.core.lock())
                core->retire(e.block);
        }
    }
};

thread_local TlsState tls_state;

} // anonymous namespace

RegistryCore::RegistryCore()
    : uid(next_registry_uid.fetch_add(1, std::memory_order_relaxed))
{}

ThreadBlock &
RegistryCore::localBlock()
{
    for (auto &e : tls_state.entries) {
        if (e.uid == uid)
            return *e.block;
    }
    auto block = std::make_shared<ThreadBlock>();
    {
        std::lock_guard<std::mutex> lock(mutex);
        blocks.push_back(block);
    }
    tls_state.entries.push_back(
        TlsEntry{uid, block, weak_from_this()});
    return *block;
}

void
RegistryCore::growBlock(ThreadBlock &block, uint32_t slot)
{
    std::lock_guard<std::mutex> lock(mutex);
    while (block.capacity <= slot) {
        block.chunks.push_back(std::make_unique<Chunk>());
        block.capacity = block.chunks.size() * kChunkSlots;
    }
}

void
RegistryCore::retire(const std::shared_ptr<ThreadBlock> &block)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (retired.size() < block->capacity)
        retired.resize(block->capacity, 0);
    for (uint32_t s = 0; s < block->capacity; ++s)
        retired[s] += block->read(s);
    blocks.erase(std::remove(blocks.begin(), blocks.end(), block),
                 blocks.end());
}

uint64_t
RegistryCore::sumSlotLocked(uint32_t slot) const
{
    uint64_t total = slot < retired.size() ? retired[slot] : 0;
    for (const auto &b : blocks) {
        if (slot < b->capacity)
            total += b->read(slot);
    }
    return total;
}

uint64_t
RegistryCore::sumSlot(uint32_t slot) const
{
    std::lock_guard<std::mutex> lock(mutex);
    return sumSlotLocked(slot);
}

} // namespace detail

void
Counter::add(uint64_t n)
{
    detail::ThreadBlock &block = core_->localBlock();
    if (slot_ >= block.capacity)
        core_->growBlock(block, slot_);
    std::atomic<uint64_t> &s = block.slot(slot_);
    // Owner-only writer: a relaxed load/store pair compiles to a
    // plain increment, unlike fetch_add's locked RMW.
    s.store(s.load(std::memory_order_relaxed) + n,
            std::memory_order_relaxed);
}

uint64_t
Counter::value() const
{
    return core_->sumSlot(slot_);
}

void
Timer::record(uint64_t ns)
{
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    uint64_t prev = max_ns_.load(std::memory_order_relaxed);
    while (prev < ns &&
           !max_ns_.compare_exchange_weak(prev, ns,
                                          std::memory_order_relaxed)) {
    }
    std::lock_guard<std::mutex> lock(mutex_);
    hist_.record(ns);
}

uint64_t
Timer::percentileNs(double q) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hist_.percentile(q);
}

void
ScopedTimer::stop()
{
    if (!timer_)
        return;
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    timer_->record(static_cast<uint64_t>(ns));
    timer_ = nullptr;
}

void
Distribution::record(uint64_t value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    hist_.record(value);
}

uint64_t
Distribution::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hist_.count();
}

double
Distribution::sum() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hist_.sum();
}

uint64_t
Distribution::min() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hist_.min();
}

uint64_t
Distribution::max() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hist_.max();
}

double
Distribution::mean() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hist_.mean();
}

uint64_t
Distribution::percentile(double q) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hist_.percentile(q);
}

HdrHistogram
Distribution::histogram() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hist_;
}

uint64_t
Snapshot::counter(const std::string &name) const
{
    for (const auto &c : counters) {
        if (c.name == name)
            return c.value;
    }
    return 0;
}

Registry::Registry() : core_(std::make_shared<detail::RegistryCore>())
{}

Registry::~Registry() = default;

Registry &
Registry::global()
{
    // Leaked so instrument references cached in function-local
    // statics stay valid through static destruction and the final
    // TLS merge of the main thread.
    static Registry *g = new Registry();
    return *g;
}

Counter &
Registry::counter(const std::string &name, const std::string &desc)
{
    std::lock_guard<std::mutex> lock(core_->mutex);
    auto it = core_->counters.find(name);
    if (it != core_->counters.end())
        return *it->second;
    core_->checkNameFree(name, "counter");
    auto *c = new Counter(core_.get(), core_->next_slot++, name, desc);
    core_->counters.emplace(name, std::unique_ptr<Counter>(c));
    return *c;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &desc)
{
    std::lock_guard<std::mutex> lock(core_->mutex);
    auto it = core_->gauges.find(name);
    if (it != core_->gauges.end())
        return *it->second;
    core_->checkNameFree(name, "gauge");
    auto *g = new Gauge(name, desc);
    core_->gauges.emplace(name, std::unique_ptr<Gauge>(g));
    return *g;
}

Timer &
Registry::timer(const std::string &name, const std::string &desc)
{
    std::lock_guard<std::mutex> lock(core_->mutex);
    auto it = core_->timers.find(name);
    if (it != core_->timers.end())
        return *it->second;
    core_->checkNameFree(name, "timer");
    auto *t = new Timer(name, desc);
    core_->timers.emplace(name, std::unique_ptr<Timer>(t));
    return *t;
}

Distribution &
Registry::distribution(const std::string &name,
                       const std::string &desc)
{
    std::lock_guard<std::mutex> lock(core_->mutex);
    auto it = core_->distributions.find(name);
    if (it != core_->distributions.end())
        return *it->second;
    core_->checkNameFree(name, "distribution");
    auto *d = new Distribution(name, desc);
    core_->distributions.emplace(name,
                                 std::unique_ptr<Distribution>(d));
    return *d;
}

Snapshot
Registry::snapshot() const
{
    Snapshot snap;
    std::lock_guard<std::mutex> lock(core_->mutex);
    for (const auto &[name, c] : core_->counters) {
        snap.counters.push_back(Snapshot::CounterVal{
            name, c->desc(), core_->sumSlotLocked(c->slot_)});
    }
    for (const auto &[name, g] : core_->gauges) {
        snap.gauges.push_back(
            Snapshot::GaugeVal{name, g->desc(), g->value()});
    }
    for (const auto &[name, t] : core_->timers) {
        Snapshot::TimerVal v;
        v.name = name;
        v.desc = t->desc();
        v.count = t->count();
        v.total_ns = t->totalNs();
        v.max_ns = t->maxNs();
        // Timer's histogram lock nests inside the registry lock
        // (never taken in the other order).
        std::lock_guard<std::mutex> tlock(t->mutex_);
        v.p50_ns = t->hist_.percentile(0.50);
        v.p90_ns = t->hist_.percentile(0.90);
        v.p99_ns = t->hist_.percentile(0.99);
        v.p999_ns = t->hist_.percentile(0.999);
        snap.timers.push_back(std::move(v));
    }
    for (const auto &[name, d] : core_->distributions) {
        Snapshot::DistVal v;
        v.name = name;
        v.desc = d->desc();
        // Distribution has its own lock; safe to take under the
        // registry lock (never taken in the other order).
        std::lock_guard<std::mutex> dlock(d->mutex_);
        v.count = d->hist_.count();
        v.sum = d->hist_.sum();
        v.mean = d->hist_.mean();
        v.min = d->hist_.min();
        v.max = d->hist_.max();
        v.p50 = d->hist_.percentile(0.50);
        v.p90 = d->hist_.percentile(0.90);
        v.p99 = d->hist_.percentile(0.99);
        v.p999 = d->hist_.percentile(0.999);
        snap.distributions.push_back(std::move(v));
    }
    return snap;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(core_->mutex);
    std::fill(core_->retired.begin(), core_->retired.end(), 0);
    for (auto &b : core_->blocks) {
        for (uint32_t s = 0; s < b->capacity; ++s)
            b->slot(s).store(0, std::memory_order_relaxed);
    }
    for (auto &[name, g] : core_->gauges)
        g->set(0);
    for (auto &[name, t] : core_->timers) {
        t->count_.store(0, std::memory_order_relaxed);
        t->total_ns_.store(0, std::memory_order_relaxed);
        t->max_ns_.store(0, std::memory_order_relaxed);
        std::lock_guard<std::mutex> tlock(t->mutex_);
        t->hist_.clear();
    }
    for (auto &[name, d] : core_->distributions) {
        std::lock_guard<std::mutex> dlock(d->mutex_);
        d->hist_.clear();
    }
}

} // namespace obs
} // namespace dnasim
