#include "obs/profile.hh"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <map>
#include <memory>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "obs/json.hh"
#include "obs/report.hh"

namespace dnasim
{
namespace obs
{

namespace
{

/** Mutable aggregation node; converted to ProfileNode at the end. */
struct BuildNode
{
    std::string name;
    uint64_t count = 0;
    uint64_t incl_ns = 0;
    uint64_t cpu_ns = 0;
    uint64_t rss_hwm_bytes = 0;
    std::map<std::string, std::unique_ptr<BuildNode>> children;

    BuildNode &
    child(const std::string &child_name)
    {
        auto &slot = children[child_name];
        if (!slot) {
            slot = std::make_unique<BuildNode>();
            slot->name = child_name;
        }
        return *slot;
    }
};

/** One span instance resolved to its aggregation node. */
struct SpanInstance
{
    uint64_t ts_ns;
    uint64_t end_ns;
    BuildNode *node;
};

ProfileNode
finalize(const BuildNode &node)
{
    ProfileNode out;
    out.name = node.name;
    out.count = node.count;
    out.incl_ns = node.incl_ns;
    out.cpu_ns = node.cpu_ns;
    out.rss_hwm_bytes = node.rss_hwm_bytes;
    uint64_t children_incl = 0;
    for (const auto &[name, child] : node.children) {
        out.children.push_back(finalize(*child));
        children_incl += child->incl_ns;
    }
    // Clock jitter can make children appear to exceed the parent;
    // clamp so exclusive time never goes negative.
    out.excl_ns =
        node.incl_ns > children_incl ? node.incl_ns - children_incl : 0;
    std::sort(out.children.begin(), out.children.end(),
              [](const ProfileNode &a, const ProfileNode &b) {
                  return a.incl_ns > b.incl_ns;
              });
    return out;
}

void
collectHotspots(const ProfileNode &node, const std::string &prefix,
                std::vector<ProfileHotspot> &out)
{
    for (const auto &child : node.children) {
        std::string path =
            prefix.empty() ? child.name : prefix + "/" + child.name;
        out.push_back(ProfileHotspot{path, child.count, child.incl_ns,
                                     child.excl_ns, child.cpu_ns});
        collectHotspots(child, path, out);
    }
}

std::string
fmtBytes(uint64_t bytes)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1);
    if (bytes >= 1ull << 30)
        os << static_cast<double>(bytes) / (1ull << 30) << " GiB";
    else if (bytes >= 1ull << 20)
        os << static_cast<double>(bytes) / (1ull << 20) << " MiB";
    else if (bytes >= 1ull << 10)
        os << static_cast<double>(bytes) / (1ull << 10) << " KiB";
    else
        os << bytes << " B";
    return os.str();
}

void
textNode(std::ostream &os, const ProfileNode &node, size_t depth,
         size_t max_depth)
{
    os << "  " << std::left << std::setw(44)
       << (std::string(2 * depth, ' ') + node.name) << std::right
       << " x" << std::setw(7) << node.count << "  incl "
       << std::setw(10) << fmtDurationNs(node.incl_ns) << "  excl "
       << std::setw(10) << fmtDurationNs(node.excl_ns);
    if (node.cpu_ns > 0)
        os << "  cpu " << std::setw(10) << fmtDurationNs(node.cpu_ns);
    if (node.rss_hwm_bytes > 0)
        os << "  rss " << fmtBytes(node.rss_hwm_bytes);
    os << "\n";
    if (depth + 1 >= max_depth && !node.children.empty()) {
        os << "  " << std::string(2 * (depth + 1), ' ') << "("
           << node.children.size() << " deeper phases elided)\n";
        return;
    }
    for (const auto &child : node.children)
        textNode(os, child, depth + 1, max_depth);
}

void
jsonNode(JsonWriter &w, const ProfileNode &node,
         const std::string &key)
{
    w.beginObject(key);
    w.value("name", node.name);
    w.value("count", node.count);
    w.value("incl_ns", node.incl_ns);
    w.value("excl_ns", node.excl_ns);
    w.value("cpu_ns", node.cpu_ns);
    w.value("rss_hwm_bytes", node.rss_hwm_bytes);
    if (!node.children.empty()) {
        w.beginArray("children");
        for (const auto &child : node.children)
            jsonNode(w, child, "");
        w.endArray();
    }
    w.endObject();
}

} // anonymous namespace

Profile
buildProfile(const std::vector<TraceSpan> &spans,
             const std::vector<RssSample> &samples, size_t top_n)
{
    BuildNode root;
    root.name = "total";

    // Recover nesting per thread: RAII spans are properly nested
    // within a thread, so sorting by (start, longest-first) puts
    // every parent before its children and an end-time stack
    // reconstructs the tree.
    std::map<uint32_t, std::vector<const TraceSpan *>> by_tid;
    for (const auto &span : spans)
        by_tid[span.tid].push_back(&span);

    std::vector<SpanInstance> instances;
    instances.reserve(spans.size());
    for (auto &[tid, tid_spans] : by_tid) {
        std::sort(tid_spans.begin(), tid_spans.end(),
                  [](const TraceSpan *a, const TraceSpan *b) {
                      if (a->ts_ns != b->ts_ns)
                          return a->ts_ns < b->ts_ns;
                      return a->dur_ns > b->dur_ns;
                  });
        struct Open
        {
            uint64_t end_ns;
            BuildNode *node;
        };
        std::vector<Open> stack;
        for (const TraceSpan *span : tid_spans) {
            while (!stack.empty() &&
                   span->ts_ns >= stack.back().end_ns)
                stack.pop_back();
            BuildNode &parent =
                stack.empty() ? root : *stack.back().node;
            BuildNode &node = parent.child(span->name);
            node.count += 1;
            node.incl_ns += span->dur_ns;
            node.cpu_ns += span->cpu_ns;
            if (stack.empty()) {
                root.count += 1;
                root.incl_ns += span->dur_ns;
                root.cpu_ns += span->cpu_ns;
            }
            uint64_t end_ns = span->ts_ns + span->dur_ns;
            instances.push_back(
                SpanInstance{span->ts_ns, end_ns, &node});
            stack.push_back(Open{end_ns, &node});
        }
    }

    // Attribute RSS samples: every phase active at a sample's
    // timestamp sees it, so each node's high-water mark is the max
    // RSS observed while any of its instances was open.
    std::vector<RssSample> sorted = samples;
    std::sort(sorted.begin(), sorted.end(),
              [](const RssSample &a, const RssSample &b) {
                  return a.ts_ns < b.ts_ns;
              });
    for (const auto &s : sorted)
        root.rss_hwm_bytes = std::max(root.rss_hwm_bytes, s.rss_bytes);
    for (const auto &inst : instances) {
        auto it = std::lower_bound(
            sorted.begin(), sorted.end(), inst.ts_ns,
            [](const RssSample &s, uint64_t ts) {
                return s.ts_ns < ts;
            });
        for (; it != sorted.end() && it->ts_ns < inst.end_ns; ++it) {
            inst.node->rss_hwm_bytes =
                std::max(inst.node->rss_hwm_bytes, it->rss_bytes);
        }
    }

    Profile profile;
    profile.root = finalize(root);
    profile.rss_samples = sorted.size();
    collectHotspots(profile.root, "", profile.hotspots);
    std::sort(profile.hotspots.begin(), profile.hotspots.end(),
              [](const ProfileHotspot &a, const ProfileHotspot &b) {
                  return a.excl_ns > b.excl_ns;
              });
    if (profile.hotspots.size() > top_n)
        profile.hotspots.resize(top_n);
    return profile;
}

Profile
buildProfile(const Trace &trace, size_t top_n)
{
    return buildProfile(trace.completeSpans(),
                        RssSampler::global().samples(), top_n);
}

std::string
profileToText(const Profile &profile, size_t max_depth)
{
    std::ostringstream os;
    if (profile.empty()) {
        os << "phase profile: no spans recorded (enable tracing "
              "with --profile or --trace-out)\n";
        return os.str();
    }
    os << "phase profile (total "
       << fmtDurationNs(profile.root.incl_ns) << " across "
       << profile.root.count << " top-level spans";
    if (profile.root.rss_hwm_bytes > 0)
        os << ", rss peak " << fmtBytes(profile.root.rss_hwm_bytes);
    os << "):\n";
    textNode(os, profile.root, 0, max_depth);
    if (!profile.hotspots.empty()) {
        os << "hotspots (by exclusive time):\n";
        for (const auto &h : profile.hotspots) {
            os << "  " << std::left << std::setw(44) << h.path
               << std::right << " x" << std::setw(7) << h.count
               << "  excl " << std::setw(10)
               << fmtDurationNs(h.excl_ns) << "  incl "
               << std::setw(10) << fmtDurationNs(h.incl_ns) << "\n";
        }
    }
    return os.str();
}

std::string
profileToJson(const Profile &profile)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginObject();
    w.value("total_ns", profile.root.incl_ns);
    w.value("top_level_spans", profile.root.count);
    w.value("rss_samples", profile.rss_samples);
    w.value("rss_peak_bytes", profile.root.rss_hwm_bytes);
    w.beginArray("hotspots");
    for (const auto &h : profile.hotspots) {
        w.beginObject();
        w.value("path", h.path);
        w.value("count", h.count);
        w.value("incl_ns", h.incl_ns);
        w.value("excl_ns", h.excl_ns);
        w.value("cpu_ns", h.cpu_ns);
        w.endObject();
    }
    w.endArray();
    jsonNode(w, profile.root, "tree");
    w.endObject();
    return os.str();
}

RssSampler &
RssSampler::global()
{
    static RssSampler *s = new RssSampler();
    return *s;
}

void
RssSampler::start(uint64_t interval_ms)
{
    if (running_.exchange(true))
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        samples_.clear();
    }
    stop_requested_.store(false);
    thread_ = std::thread([this, interval_ms] { loop(interval_ms); });
}

void
RssSampler::stop()
{
    if (!running_.load())
        return;
    stop_requested_.store(true);
    if (thread_.joinable())
        thread_.join();
    running_.store(false);
}

void
RssSampler::record(uint64_t ts_ns, uint64_t rss_bytes)
{
    if (rss_bytes == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.push_back(RssSample{ts_ns, rss_bytes});
}

std::vector<RssSample>
RssSampler::samples() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_;
}

void
RssSampler::loop(uint64_t interval_ms)
{
    while (!stop_requested_.load()) {
        RssSample sample;
        sample.ts_ns = Trace::global().nowNs();
        sample.rss_bytes = currentRssBytes();
        if (sample.rss_bytes > 0) {
            std::lock_guard<std::mutex> lock(mutex_);
            samples_.push_back(sample);
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }
}

uint64_t
currentRssBytes()
{
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmRSS:", 0) == 0) {
            unsigned long long kb = 0;
            std::sscanf(line.c_str(), "VmRSS: %llu", &kb);
            return static_cast<uint64_t>(kb) * 1024;
        }
    }
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) == 0 &&
        usage.ru_maxrss > 0) {
        // ru_maxrss is KiB on Linux, bytes on macOS.
#if defined(__APPLE__)
        return static_cast<uint64_t>(usage.ru_maxrss);
#else
        return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
#endif
    }
#endif
    return 0;
}

} // namespace obs
} // namespace dnasim
