/**
 * @file
 * The dnasim stats registry, in the spirit of gem5's Stats framework.
 *
 * A Registry owns named instruments, created on demand and grouped
 * hierarchically by dotted name ("channel.errors.sub"):
 *
 *  - Counter:      monotonically increasing event count. Hot-path
 *                  cheap: each thread increments a private cache-line
 *                  shard with a relaxed store, and shards are merged
 *                  when a snapshot is taken, so concurrent simulation
 *                  threads never contend.
 *  - Gauge:        a signed level that can move both ways.
 *  - Timer:        accumulated wall time over intervals, fed by the
 *                  RAII ScopedTimer; intervals also feed a
 *                  log-bucketed HDR histogram, so snapshots carry
 *                  p50/p90/p99/p999 latencies accurate across the
 *                  ns–minutes range.
 *  - Distribution: a value distribution backed by obs/hdr_histogram
 *                  (count/sum/min/max plus log-bucketed percentiles
 *                  at ~constant memory, mergeable across shards).
 *
 * Instruments live as long as their Registry; references returned by
 * the lookup methods are stable. The process-wide registry
 * (Registry::global()) is never destroyed, so hot paths may cache
 * references in function-local statics. Local Registry instances are
 * for tests; a local registry must outlive the threads that touch
 * its instruments.
 */

#ifndef DNASIM_OBS_STATS_HH
#define DNASIM_OBS_STATS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/hdr_histogram.hh"

namespace dnasim
{
namespace obs
{

namespace detail
{
struct RegistryCore;
} // namespace detail

/** A monotonically increasing event counter (thread-sharded). */
class Counter
{
  public:
    void add(uint64_t n);
    void inc() { add(1); }

    /** Merged value across all live and retired thread shards. */
    uint64_t value() const;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    friend struct detail::RegistryCore;
    friend class Registry;
    Counter(detail::RegistryCore *core, uint32_t slot, std::string name,
            std::string desc)
        : core_(core), slot_(slot), name_(std::move(name)),
          desc_(std::move(desc))
    {}

    detail::RegistryCore *core_;
    uint32_t slot_;
    std::string name_;
    std::string desc_;
};

/** A signed level (e.g. pool size); set() and add() both allowed. */
class Gauge
{
  public:
    void set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
    void add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
    int64_t value() const { return value_.load(std::memory_order_relaxed); }

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    friend struct detail::RegistryCore;
    friend class Registry;
    Gauge(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}

    std::atomic<int64_t> value_{0};
    std::string name_;
    std::string desc_;
};

/** Accumulated wall time over timed intervals. */
class Timer
{
  public:
    /** Record one interval of @p ns nanoseconds. */
    void record(uint64_t ns);

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t totalNs() const { return total_ns_.load(std::memory_order_relaxed); }
    uint64_t maxNs() const { return max_ns_.load(std::memory_order_relaxed); }

    /** Interval-duration percentile from the HDR histogram. */
    uint64_t percentileNs(double q) const;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    friend struct detail::RegistryCore;
    friend class Registry;
    Timer(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}

    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> total_ns_{0};
    std::atomic<uint64_t> max_ns_{0};
    mutable std::mutex mutex_; ///< guards hist_ only
    HdrHistogram hist_;
    std::string name_;
    std::string desc_;
};

/** RAII interval feeding a Timer. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Timer &timer)
        : timer_(&timer), start_(std::chrono::steady_clock::now())
    {}

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** Record the interval now instead of at destruction. */
    void stop();

    ~ScopedTimer() { stop(); }

  private:
    Timer *timer_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * A distribution of non-negative integer values, backed by a
 * log-bucketed HdrHistogram: exact below 64, within one log-bucket
 * (<= ~1.6% relative) above, at bounded memory regardless of range.
 * record() takes a short lock, so keep it out of per-base hot loops;
 * per-cluster or coarser is fine.
 */
class Distribution
{
  public:
    void record(uint64_t value);

    uint64_t count() const;
    double sum() const;
    uint64_t min() const;
    uint64_t max() const;
    double mean() const;

    /**
     * Lower bound of the bucket reaching cumulative mass q, clamped
     * to the observed [min, max] (0 if empty).
     */
    uint64_t percentile(double q) const;

    /** Copy of the backing histogram (mergeable across shards). */
    HdrHistogram histogram() const;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    friend struct detail::RegistryCore;
    friend class Registry;
    Distribution(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}

    mutable std::mutex mutex_;
    HdrHistogram hist_;
    std::string name_;
    std::string desc_;
};

/** Point-in-time merged view of a registry. */
struct Snapshot
{
    struct CounterVal
    {
        std::string name, desc;
        uint64_t value;
    };
    struct GaugeVal
    {
        std::string name, desc;
        int64_t value;
    };
    struct TimerVal
    {
        std::string name, desc;
        uint64_t count, total_ns, max_ns;
        uint64_t p50_ns = 0, p90_ns = 0, p99_ns = 0, p999_ns = 0;
    };
    struct DistVal
    {
        std::string name, desc;
        uint64_t count;
        double sum, mean;
        uint64_t min, max, p50, p90, p99, p999;
    };

    std::vector<CounterVal> counters;
    std::vector<GaugeVal> gauges;
    std::vector<TimerVal> timers;
    std::vector<DistVal> distributions;

    /** Counter value by name (0 if absent). */
    uint64_t counter(const std::string &name) const;

    bool empty() const
    {
        return counters.empty() && gauges.empty() && timers.empty() &&
               distributions.empty();
    }
};

/** A named collection of instruments. */
class Registry
{
  public:
    Registry();
    ~Registry();
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** The process-wide registry (never destroyed). */
    static Registry &global();

    /**
     * Find or create an instrument. Dotted names express grouping
     * ("stage.pcr.time"). Looking up an existing name with a
     * different kind panics.
     */
    Counter &counter(const std::string &name,
                     const std::string &desc = "");
    Gauge &gauge(const std::string &name, const std::string &desc = "");
    Timer &timer(const std::string &name, const std::string &desc = "");
    Distribution &distribution(const std::string &name,
                               const std::string &desc = "");

    /** Merged point-in-time view, sorted by name. */
    Snapshot snapshot() const;

    /**
     * Zero every instrument (bench warmup / test isolation). Not
     * linearizable against concurrent writers; call at quiescence.
     */
    void reset();

  private:
    std::shared_ptr<detail::RegistryCore> core_;
};

} // namespace obs
} // namespace dnasim

#endif // DNASIM_OBS_STATS_HH
