#include "obs/snapshot.hh"

#include <chrono>

#include "obs/profile.hh"
#include "obs/trace.hh"

namespace dnasim
{
namespace obs
{

std::vector<CounterRate>
computeRates(const Snapshot &prev, const Snapshot &cur,
             uint64_t interval_ns)
{
    std::vector<CounterRate> rates;
    rates.reserve(cur.counters.size());
    // Both snapshots are name-sorted (std::map iteration); walk them
    // in lockstep instead of a quadratic name lookup.
    size_t pi = 0;
    for (const auto &c : cur.counters) {
        while (pi < prev.counters.size() &&
               prev.counters[pi].name < c.name)
            ++pi;
        uint64_t before = 0;
        if (pi < prev.counters.size() &&
            prev.counters[pi].name == c.name)
            before = prev.counters[pi].value;
        CounterRate r;
        r.name = c.name;
        r.value = c.value;
        // A reset between samples can move a counter backwards;
        // clamp instead of wrapping to a huge delta.
        r.delta = c.value >= before ? c.value - before : 0;
        r.per_sec = interval_ns > 0
                        ? static_cast<double>(r.delta) * 1e9 /
                              static_cast<double>(interval_ns)
                        : 0.0;
        rates.push_back(std::move(r));
    }
    return rates;
}

TelemetrySampler &
TelemetrySampler::global()
{
    static TelemetrySampler *s = new TelemetrySampler();
    return *s;
}

TelemetrySampler::~TelemetrySampler()
{
    stop();
}

void
TelemetrySampler::addSink(std::shared_ptr<TelemetrySink> sink)
{
    std::lock_guard<std::mutex> lock(sample_mutex_);
    sinks_.push_back(std::move(sink));
}

void
TelemetrySampler::clearSinks()
{
    std::lock_guard<std::mutex> lock(sample_mutex_);
    sinks_.clear();
}

void
TelemetrySampler::start(uint64_t period_ms, const Registry *registry)
{
    if (running_.exchange(true))
        return;
    {
        std::lock_guard<std::mutex> lock(sample_mutex_);
        registry_ = registry;
        prev_snap_ = Snapshot();
        prev_ns_ = monotonicNowNs();
        seq_ = 0;
        last_event_seq_ = EventJournal::global().lastSeq();
        samples_taken_.store(0);
    }
    {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        stop_requested_ = false;
    }
    thread_ = std::thread([this, period_ms] { loop(period_ms); });
}

void
TelemetrySampler::stop()
{
    if (!running_.load())
        return;
    {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        stop_requested_ = true;
    }
    wake_.notify_all();
    if (thread_.joinable())
        thread_.join();
    sampleNow(/*final_sample=*/true);
    clearProgressHeartbeat();
    std::vector<std::shared_ptr<TelemetrySink>> sinks;
    {
        std::lock_guard<std::mutex> lock(sample_mutex_);
        sinks = sinks_;
    }
    for (auto &sink : sinks)
        sink->close();
    running_.store(false);
}

void
TelemetrySampler::sampleNow(bool final_sample)
{
    IntervalSample sample;
    std::vector<std::shared_ptr<TelemetrySink>> sinks;
    {
        std::lock_guard<std::mutex> lock(sample_mutex_);
        const Registry &reg =
            registry_ ? *registry_ : Registry::global();
        sample.seq = ++seq_;
        sample.mono_ns = monotonicNowNs();
        sample.interval_ns =
            sample.mono_ns > prev_ns_ ? sample.mono_ns - prev_ns_ : 0;
        sample.final_sample = final_sample;
        sample.snap = reg.snapshot();
        sample.rates =
            computeRates(prev_snap_, sample.snap, sample.interval_ns);
        sample.rss_bytes = currentRssBytes();
        sample.progress = progressSnapshot();
        sample.events =
            EventJournal::global().eventsSince(last_event_seq_);
        if (!sample.events.empty())
            last_event_seq_ = sample.events.back().seq;
        prev_snap_ = sample.snap;
        prev_ns_ = sample.mono_ns;
        sinks = sinks_;
    }
    samples_taken_.fetch_add(1);

    if (feed_profiler_rss_) {
        RssSampler::global().record(Trace::global().nowNs(),
                                    sample.rss_bytes);
    }
    paintProgressHeartbeat(sample.rss_bytes);
    for (auto &sink : sinks)
        sink->onSample(sample);
}

void
TelemetrySampler::loop(uint64_t period_ms)
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(wake_mutex_);
            wake_.wait_for(lock,
                           std::chrono::milliseconds(period_ms),
                           [this] { return stop_requested_; });
            if (stop_requested_)
                return;
        }
        sampleNow(/*final_sample=*/false);
    }
}

} // namespace obs
} // namespace dnasim
