#include "obs/telemetry.hh"

#include <cerrno>
#include <cstring>
#include <sstream>

#include "base/logging.hh"
#include "obs/json.hh"
#include "obs/outfile.hh"
#include "obs/provenance.hh"

namespace dnasim
{
namespace obs
{

std::string
telemetrySampleLine(const IntervalSample &sample)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginObject();
    w.value("schema", "dnasim.telemetry.v1");
    w.value("kind", "sample");
    w.value("seq", sample.seq);
    w.value("ts_ns", sample.mono_ns);
    w.value("interval_ns", sample.interval_ns);
    w.value("final", sample.final_sample);
    w.value("rss_bytes", sample.rss_bytes);
    w.beginArray("counters");
    for (const auto &r : sample.rates) {
        w.beginObject();
        w.value("name", r.name);
        w.value("value", r.value);
        w.value("delta", r.delta);
        w.value("per_sec", r.per_sec);
        w.endObject();
    }
    w.endArray();
    w.beginArray("gauges");
    for (const auto &g : sample.snap.gauges) {
        w.beginObject();
        w.value("name", g.name);
        w.value("value", g.value);
        w.endObject();
    }
    w.endArray();
    w.beginArray("timers");
    for (const auto &t : sample.snap.timers) {
        w.beginObject();
        w.value("name", t.name);
        w.value("count", t.count);
        w.value("total_ns", t.total_ns);
        w.value("p50_ns", t.p50_ns);
        w.value("p90_ns", t.p90_ns);
        w.value("p99_ns", t.p99_ns);
        w.value("p999_ns", t.p999_ns);
        w.endObject();
    }
    w.endArray();
    w.beginArray("progress");
    for (const auto &p : sample.progress) {
        w.beginObject();
        w.value("phase", p.name);
        w.value("done", p.done);
        w.value("total", p.total);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return os.str();
}

std::string
telemetryEventLine(const Event &event)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginObject();
    w.value("schema", "dnasim.telemetry.v1");
    w.value("kind", "event");
    w.value("seq", event.seq);
    w.value("ts_ns", event.ts_ns);
    w.value("event", event.kind);
    w.value("name", event.name);
    w.beginObject("fields");
    for (const auto &[key, val] : event.fields)
        w.value(key, val);
    w.endObject();
    w.endObject();
    return os.str();
}

std::string
telemetryMetaLine()
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginObject();
    w.value("schema", "dnasim.telemetry.v1");
    w.value("kind", "meta");
    writeProvenance(w);
    w.endObject();
    return os.str();
}

JsonlTelemetrySink::JsonlTelemetrySink(std::string path)
    : path_(std::move(path))
{
    std::string error;
    if (!prepareOutputPath(path_, &error)) {
        warn("telemetry: ", error);
        ok_ = false;
        warned_ = true;
        return;
    }
    file_ = std::fopen(path_.c_str(), "wb");
    if (!file_) {
        warn("telemetry: cannot open '", path_,
             "': ", std::strerror(errno));
        ok_ = false;
        warned_ = true;
        return;
    }
    // Consumers (watch, diff tooling) key on the provenance header
    // before any sample arrives.
    writeLine(telemetryMetaLine());
}

JsonlTelemetrySink::~JsonlTelemetrySink()
{
    close();
}

void
JsonlTelemetrySink::onSample(const IntervalSample &sample)
{
    // Events precede the sample that collected them.
    for (const auto &event : sample.events)
        writeLine(telemetryEventLine(event));
    writeLine(telemetrySampleLine(sample));
    if (file_)
        std::fflush(file_);
}

void
JsonlTelemetrySink::writeLine(const std::string &line)
{
    if (!file_)
        return;
    if (std::fwrite(line.data(), 1, line.size(), file_) !=
            line.size() ||
        std::fputc('\n', file_) == EOF) {
        ok_ = false;
        if (!warned_) {
            warn("telemetry: write to '", path_,
                 "' failed: ", std::strerror(errno));
            warned_ = true;
        }
    }
}

void
JsonlTelemetrySink::close()
{
    if (!file_)
        return;
    if (std::fclose(file_) != 0 && ok_) {
        ok_ = false;
        warn("telemetry: closing '", path_,
             "' failed: ", std::strerror(errno));
    }
    file_ = nullptr;
}

} // namespace obs
} // namespace dnasim
