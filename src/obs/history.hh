/**
 * @file
 * The bench trajectory ledger: ingestion of dnasim.bench.v1 reports,
 * an append-only BENCH_LEDGER.jsonl history, and a noise-aware
 * performance-diff comparator.
 *
 * Runs are keyed by (benchmark name, config hash, threads, git rev)
 * so repeats of the same configuration group into samples, and the
 * diff computes per-benchmark-row mean/stddev over repeats with a
 * relative delta. The verdict is noise-aware: a row regresses only
 * when its slowdown exceeds max(threshold, sigma x pooled relative
 * stddev), so single noisy repeats don't flag and genuinely quiet
 * benchmarks still trip on small real regressions.
 *
 * Consumed by `dnasim bench {ingest,diff,list}`, the standalone
 * tools/benchdiff binary, and the CI perf gate (which diffs
 * quick-mode perf_* runs against bench/baselines/).
 */

#ifndef DNASIM_OBS_HISTORY_HH
#define DNASIM_OBS_HISTORY_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dnasim
{
namespace obs
{

/** One benchmark measurement row of a run. */
struct BenchRunRow
{
    std::string name;
    double real_time_ns = 0.0;
    double cpu_time_ns = 0.0;
    uint64_t iterations = 0;
    /// Per-row RSS high-water mark (bytes; 0 when the source report
    /// predates the field or the platform can't measure it).
    uint64_t rss_high_water_bytes = 0;
};

/** One ingested dnasim.bench.v1 report. */
struct BenchRun
{
    std::string name;    ///< bench binary ("perf_channel", ...)
    std::string git_rev; ///< short revision, "unknown" if absent
    std::string source;  ///< file the run was loaded from
    uint64_t seed = 0;
    uint64_t threads = 1;
    double wall_time_s = 0.0;
    uint64_t peak_rss_bytes = 0;
    std::string rss_source; ///< "proc_status", "getrusage", "none"
    double strands_per_s = 0.0; ///< NaN-guarded: 0 when absent/NaN
    double bases_per_s = 0.0;
    std::vector<std::pair<std::string, std::string>> config;
    std::vector<BenchRunRow> rows;

    /**
     * FNV-1a hash over the sorted config (minus the "threads" key,
     * which is part of the run key on its own), hex-encoded.
     */
    std::string configHash() const;

    /** Ledger grouping key: name|config-hash|threads|git-rev. */
    std::string key() const;
};

/** Parse a dnasim.bench.v1 document. */
bool parseBenchReport(const std::string &json_text, BenchRun &out,
                      std::string *error = nullptr);

/** Load one BENCH_<name>.json file. */
bool loadBenchReport(const std::string &path, BenchRun &out,
                     std::string *error = nullptr);

/**
 * Load bench runs from @p path: a single .json report, a .jsonl
 * ledger, or a directory searched recursively for BENCH_*.json.
 * Unparseable files are reported into @p errors (when non-null) and
 * skipped.
 */
std::vector<BenchRun> loadBenchInput(
    const std::string &path,
    std::vector<std::string> *errors = nullptr);

/**
 * Serialize @p run as one compact dnasim.bench.v1 document (a
 * ledger line). Round-trips through parseBenchReport().
 */
std::string benchRunToJsonLine(const BenchRun &run);

/**
 * Append @p run to the JSONL ledger at @p path unless an identical
 * run (same key, wall time and seed) is already recorded. Returns
 * false on I/O error; @p appended reports whether a line was added.
 */
bool appendToLedger(const std::string &path, const BenchRun &run,
                    bool *appended = nullptr,
                    std::string *error = nullptr);

/** Read every parseable line of a JSONL ledger. */
std::vector<BenchRun> readLedger(
    const std::string &path,
    std::vector<std::string> *errors = nullptr);

/** Comparator tuning. */
struct DiffOptions
{
    /** Minimum relative slowdown to flag regardless of noise. */
    double threshold = 0.05;
    /** Noise multiplier: flag only beyond sigma x pooled stddev. */
    double sigma = 3.0;
    /**
     * Minimum relative RSS high-water growth to flag. Memory is far
     * less noisy than time, so there is no sigma term; rows missing
     * the statistic on either side are never flagged.
     */
    double mem_threshold = 0.25;
    /**
     * When true, memory regressions fail the diff (exit 2) like time
     * regressions; when false (default) they are advisory — printed
     * and counted, but ok() ignores them.
     */
    bool mem_gate = false;
};

/** Mean/stddev of one row's repeats. */
struct RowStats
{
    size_t n = 0;
    double mean_ns = 0.0;
    double stddev_ns = 0.0; ///< sample stddev, 0 when n < 2
};

/** Outcome for one (benchmark, row) pair. */
enum class Verdict
{
    kOk,       ///< within noise
    kFaster,   ///< improved beyond the noise floor
    kSlower,   ///< REGRESSION: slowdown beyond the noise floor
    kOnlyInA,  ///< row present only in the baseline
    kOnlyInB,  ///< row present only in the candidate
};

/** One compared row. */
struct RowDelta
{
    std::string bench; ///< bench binary name
    std::string row;   ///< benchmark row name
    RowStats a, b;
    double rel_delta = 0.0; ///< (b.mean - a.mean) / a.mean
    double noise_rel = 0.0; ///< max(threshold, sigma*pooled/mean_a)
    Verdict verdict = Verdict::kOk;
    /// Mean RSS high-water over repeats, bytes; 0 = not measured.
    double mem_a_bytes = 0.0;
    double mem_b_bytes = 0.0;
    /// (mem_b - mem_a) / mem_a; only meaningful when both sides are
    /// non-zero (mem_measured).
    double mem_rel_delta = 0.0;
    bool mem_measured = false;
    /// mem_rel_delta exceeded DiffOptions::mem_threshold.
    bool mem_regressed = false;
};

/** Full comparison of two run sets. */
struct DiffReport
{
    std::vector<RowDelta> rows;
    /// Echo of DiffOptions::mem_gate at diff time.
    bool mem_gate = false;

    size_t regressions() const;
    size_t improvements() const;
    /** Rows whose RSS high water grew beyond the mem threshold. */
    size_t memRegressions() const;
    /**
     * True when no row regressed on time — nor, with mem_gate, on
     * memory (missing rows are advisory either way).
     */
    bool ok() const
    {
        return regressions() == 0 &&
               (!mem_gate || memRegressions() == 0);
    }
};

/**
 * Compare @p baseline against @p candidate. Rows group by
 * (run name, row name) across repeats; real_time_ns is the compared
 * statistic. Non-finite or non-positive samples are dropped.
 */
DiffReport diffBenchRuns(const std::vector<BenchRun> &baseline,
                         const std::vector<BenchRun> &candidate,
                         const DiffOptions &options = {});

/** Human-readable diff table (one line per row + summary). */
std::string diffToText(const DiffReport &report,
                       const DiffOptions &options);

/** Machine-readable diff (schema dnasim.benchdiff.v1). */
std::string diffToJson(const DiffReport &report,
                       const DiffOptions &options);

/**
 * Trajectory summary of a ledger: one line per run key with repeat
 * count, wall-time range and row count.
 */
std::string ledgerSummary(const std::vector<BenchRun> &runs);

} // namespace obs
} // namespace dnasim

#endif // DNASIM_OBS_HISTORY_HH
