#include "obs/report.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "base/logging.hh"
#include "obs/json.hh"
#include "obs/outfile.hh"
#include "obs/profile.hh"
#include "obs/provenance.hh"

namespace dnasim
{
namespace obs
{

std::string
fmtDurationNs(uint64_t ns)
{
    std::ostringstream os;
    os << std::fixed;
    if (ns >= 1'000'000'000ull) {
        os << std::setprecision(3)
           << static_cast<double>(ns) / 1e9 << " s";
    } else if (ns >= 1'000'000ull) {
        os << std::setprecision(3)
           << static_cast<double>(ns) / 1e6 << " ms";
    } else if (ns >= 1'000ull) {
        os << std::setprecision(3)
           << static_cast<double>(ns) / 1e3 << " us";
    } else {
        os << ns << " ns";
    }
    return os.str();
}

namespace
{

/**
 * Nanosecond scale of a time-valued distribution, inferred from its
 * name suffix (_ns/_us/_ms/_s); 0 for non-time distributions.
 */
uint64_t
timeUnitScaleNs(const std::string &name)
{
    auto ends_with = [&](const char *suffix) {
        size_t len = std::strlen(suffix);
        return name.size() >= len &&
               name.compare(name.size() - len, len, suffix) == 0;
    };
    if (ends_with("_ns"))
        return 1;
    if (ends_with("_us"))
        return 1'000;
    if (ends_with("_ms"))
        return 1'000'000;
    if (ends_with("_s"))
        return 1'000'000'000;
    return 0;
}

/** Value of a time distribution in its human-readable unit. */
std::string
fmtDistValue(double value, uint64_t scale_ns)
{
    if (scale_ns == 0) {
        std::ostringstream os;
        os << std::fixed << std::setprecision(2) << value;
        return os.str();
    }
    return fmtDurationNs(static_cast<uint64_t>(
        value * static_cast<double>(scale_ns)));
}

void
line(std::ostream &os, const std::string &name,
     const std::string &value, const std::string &desc)
{
    os << "  " << std::left << std::setw(40) << name << " "
       << std::right << std::setw(16) << value;
    if (!desc.empty())
        os << "   # " << desc;
    os << "\n";
}

} // anonymous namespace

std::string
statsToText(const Snapshot &snap)
{
    std::ostringstream os;
    if (!snap.counters.empty()) {
        os << "counters:\n";
        for (const auto &c : snap.counters)
            line(os, c.name, std::to_string(c.value), c.desc);
    }
    if (!snap.gauges.empty()) {
        os << "gauges:\n";
        for (const auto &g : snap.gauges)
            line(os, g.name, std::to_string(g.value), g.desc);
    }
    if (!snap.timers.empty()) {
        os << "timers:\n";
        for (const auto &t : snap.timers) {
            std::ostringstream v;
            v << fmtDurationNs(t.total_ns) << " /" << t.count
              << " p50=" << fmtDurationNs(t.p50_ns)
              << " p90=" << fmtDurationNs(t.p90_ns)
              << " p99=" << fmtDurationNs(t.p99_ns);
            line(os, t.name, v.str(), t.desc);
        }
    }
    if (!snap.distributions.empty()) {
        os << "distributions:\n";
        for (const auto &d : snap.distributions) {
            // Time-valued distributions (by _ns/_us/_ms/_s suffix)
            // print in human-readable units instead of raw ticks.
            const uint64_t scale = timeUnitScaleNs(d.name);
            auto fmt = [&](uint64_t value) {
                return fmtDistValue(static_cast<double>(value),
                                    scale);
            };
            std::ostringstream v;
            v << "n=" << d.count << " mean="
              << fmtDistValue(d.mean, scale) << " [" << fmt(d.min)
              << "," << fmt(d.max) << "] p50=" << fmt(d.p50)
              << " p90=" << fmt(d.p90) << " p99=" << fmt(d.p99);
            line(os, d.name, v.str(), d.desc);
        }
    }
    if (snap.empty())
        os << "(no stats recorded)\n";
    return os.str();
}

std::string
statsToJson(const Snapshot &snap, const std::vector<LogLine> &log,
            const Profile *profile)
{
    std::ostringstream os;
    JsonWriter w(os, 2);
    w.beginObject();
    w.value("schema", "dnasim.stats.v1");
    writeProvenance(w);

    w.beginObject("counters");
    for (const auto &c : snap.counters)
        w.value(c.name, c.value);
    w.endObject();

    w.beginObject("gauges");
    for (const auto &g : snap.gauges)
        w.value(g.name, g.value);
    w.endObject();

    w.beginObject("timers");
    for (const auto &t : snap.timers) {
        w.beginObject(t.name);
        w.value("count", t.count);
        w.value("total_ns", t.total_ns);
        w.value("max_ns", t.max_ns);
        w.value("mean_ns",
                t.count == 0
                    ? 0.0
                    : static_cast<double>(t.total_ns) /
                          static_cast<double>(t.count));
        w.value("p50_ns", t.p50_ns);
        w.value("p90_ns", t.p90_ns);
        w.value("p99_ns", t.p99_ns);
        w.value("p999_ns", t.p999_ns);
        w.endObject();
    }
    w.endObject();

    w.beginObject("distributions");
    for (const auto &d : snap.distributions) {
        w.beginObject(d.name);
        w.value("count", d.count);
        w.value("sum", d.sum);
        w.value("mean", d.mean);
        w.value("min", d.min);
        w.value("max", d.max);
        w.value("p50", d.p50);
        w.value("p90", d.p90);
        w.value("p99", d.p99);
        w.value("p999", d.p999);
        w.endObject();
    }
    w.endObject();

    w.beginArray("log");
    for (const auto &l : log) {
        w.beginObject();
        w.value("level", l.level);
        w.value("message", l.message);
        w.endObject();
    }
    w.endArray();

    // Phase profiler section (backwards-compatible addition: only
    // present when a profile was built from an enabled trace).
    if (profile && !profile->empty())
        w.rawValue("profile", profileToJson(*profile));

    // Descriptions ride in a parallel object so the value maps above
    // stay directly loadable into dataframes.
    w.beginObject("descriptions");
    for (const auto &c : snap.counters)
        if (!c.desc.empty())
            w.value(c.name, c.desc);
    for (const auto &g : snap.gauges)
        if (!g.desc.empty())
            w.value(g.name, g.desc);
    for (const auto &t : snap.timers)
        if (!t.desc.empty())
            w.value(t.name, t.desc);
    for (const auto &d : snap.distributions)
        if (!d.desc.empty())
            w.value(d.name, d.desc);
    w.endObject();

    w.endObject();
    os << '\n';
    return os.str();
}

bool
writeStatsJson(const std::string &path, const Snapshot &snap,
               const std::vector<LogLine> &log,
               const Profile *profile)
{
    std::string error;
    if (!prepareOutputPath(path, &error)) {
        warn("stats: ", error);
        return false;
    }
    std::ofstream os(path);
    if (!os) {
        warn("stats: cannot open '", path,
             "': ", std::strerror(errno));
        return false;
    }
    os << statsToJson(snap, log, profile);
    return os.good();
}

namespace
{

std::mutex capture_mutex;
std::vector<LogLine> captured_log;

} // anonymous namespace

void
startLogCapture()
{
    setLogSink([](LogLevel level, const std::string &msg) {
        {
            std::lock_guard<std::mutex> lock(capture_mutex);
            captured_log.push_back(LogLine{
                level == LogLevel::Warn ? "warn" : "info", msg});
        }
        std::cerr << (level == LogLevel::Warn ? "warn: " : "info: ")
                  << msg << std::endl;
    });
}

std::vector<LogLine>
capturedLog()
{
    std::lock_guard<std::mutex> lock(capture_mutex);
    return captured_log;
}

} // namespace obs
} // namespace dnasim
