/**
 * @file
 * Exporters for Registry snapshots: a human-readable text table and
 * a stable-schema JSON document ("dnasim.stats.v1", documented in
 * EXPERIMENTS.md). The JSON form optionally embeds log lines
 * captured through the logging sink (base/logging.hh).
 */

#ifndef DNASIM_OBS_REPORT_HH
#define DNASIM_OBS_REPORT_HH

#include <string>
#include <vector>

#include "obs/stats.hh"

namespace dnasim
{
namespace obs
{

struct Profile;

/** One captured inform()/warn() line. */
struct LogLine
{
    std::string level; ///< "info" or "warn"
    std::string message;
};

/** Format @p ns with a human-readable unit (ns/us/ms/s). */
std::string fmtDurationNs(uint64_t ns);

/** Render @p snap as an aligned, dotted-name-grouped text report. */
std::string statsToText(const Snapshot &snap);

/**
 * Render @p snap as a dnasim.stats.v1 JSON document. A non-null
 * @p profile adds the phase profiler's "profile" section
 * (obs/profile.hh).
 */
std::string statsToJson(const Snapshot &snap,
                        const std::vector<LogLine> &log = {},
                        const Profile *profile = nullptr);

/**
 * Write statsToJson() to @p path; returns false on I/O failure.
 */
bool writeStatsJson(const std::string &path, const Snapshot &snap,
                    const std::vector<LogLine> &log = {},
                    const Profile *profile = nullptr);

/**
 * Install a logging sink that tees inform()/warn() to stderr and
 * records them into an internal buffer; capturedLog() drains it.
 * Used by the CLI so --stats-out reports embed run warnings.
 */
void startLogCapture();
std::vector<LogLine> capturedLog();

} // namespace obs
} // namespace dnasim

#endif // DNASIM_OBS_REPORT_HH
