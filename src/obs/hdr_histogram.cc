#include "obs/hdr_histogram.hh"

#include <algorithm>
#include <bit>

namespace dnasim
{
namespace obs
{

uint32_t
HdrHistogram::bucketIndex(uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<uint32_t>(value);
    // Octave o = floor(log2(value)) >= kSubBucketBits; the octave
    // [2^o, 2^(o+1)) is split into kSubBuckets linear buckets of
    // width 2^(o - kSubBucketBits).
    uint32_t o = 63 - static_cast<uint32_t>(std::countl_zero(value));
    uint32_t sub = static_cast<uint32_t>(
        (value >> (o - kSubBucketBits)) & (kSubBuckets - 1));
    return (o - kSubBucketBits + 1) * kSubBuckets + sub;
}

uint64_t
HdrHistogram::bucketLowerBound(uint32_t index)
{
    if (index < kSubBuckets)
        return index;
    uint32_t o = index / kSubBuckets + kSubBucketBits - 1;
    uint64_t sub = index % kSubBuckets;
    return (kSubBuckets + sub) << (o - kSubBucketBits);
}

void
HdrHistogram::record(uint64_t value, uint64_t weight)
{
    if (weight == 0)
        return;
    uint32_t idx = bucketIndex(value);
    if (idx >= counts_.size())
        counts_.resize(idx + 1, 0);
    counts_[idx] += weight;
    if (count_ == 0 || value < min_)
        min_ = value;
    if (count_ == 0 || value > max_)
        max_ = value;
    count_ += weight;
    sum_ += static_cast<double>(value) * static_cast<double>(weight);
}

double
HdrHistogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

uint64_t
HdrHistogram::percentile(double q) const
{
    if (count_ == 0)
        return 0;
    if (q <= 0.0)
        return min_;
    if (q >= 1.0)
        return max_;
    uint64_t target = static_cast<uint64_t>(
        q * static_cast<double>(count_) + 0.5);
    if (target < 1)
        target = 1;
    if (target > count_)
        target = count_;
    uint64_t seen = 0;
    for (uint32_t idx = 0; idx < counts_.size(); ++idx) {
        seen += counts_[idx];
        if (seen >= target) {
            uint64_t lo = bucketLowerBound(idx);
            // The exact extremes are tracked; never report a bucket
            // bound outside the observed range.
            if (lo < min_)
                return min_;
            if (lo > max_)
                return max_;
            return lo;
        }
    }
    return max_;
}

void
HdrHistogram::merge(const HdrHistogram &other)
{
    if (other.count_ == 0)
        return;
    if (other.counts_.size() > counts_.size())
        counts_.resize(other.counts_.size(), 0);
    for (size_t i = 0; i < other.counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    if (count_ == 0 || other.min_ < min_)
        min_ = other.min_;
    if (count_ == 0 || other.max_ > max_)
        max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
}

void
HdrHistogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = 0;
    max_ = 0;
}

} // namespace obs
} // namespace dnasim
