/**
 * @file
 * The interval snapshot engine behind streaming telemetry.
 *
 * A TelemetrySampler thread takes cheap, consistent point-in-time
 * snapshots of a stats Registry on a fixed cadence, diffs each
 * snapshot against the previous one into per-interval counter rates,
 * attaches the current RSS, progress-board state and the event-
 * journal entries that arrived since the last tick, and hands the
 * resulting IntervalSample to every attached TelemetrySink (the
 * OpenMetrics file writer, the dnasim.telemetry.v1 JSONL stream).
 *
 * Consistency model: one sample is built from a single
 * Registry::snapshot() call, which merges all thread shards under
 * the registry lock — counters within a sample are mutually
 * consistent to within the duration of that merge (no torn
 * per-counter reads; counters may differ by the handful of events
 * that land mid-merge). Rates are computed from consecutive merged
 * snapshots, so over- and under-counts cancel across intervals.
 *
 * The sampler never touches simulation state and only writes to its
 * own sinks and stderr; all data outputs remain byte-identical with
 * telemetry enabled. stop() takes one final sample (so short runs
 * still produce at least one) and closes the sinks.
 */

#ifndef DNASIM_OBS_SNAPSHOT_HH
#define DNASIM_OBS_SNAPSHOT_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/events.hh"
#include "obs/progress.hh"
#include "obs/stats.hh"

namespace dnasim
{
namespace obs
{

/** Per-interval movement of one counter. */
struct CounterRate
{
    std::string name;
    uint64_t value = 0; ///< cumulative at this sample
    uint64_t delta = 0; ///< increase over the interval
    double per_sec = 0.0;
};

/** One tick of the sampler: cumulative state plus interval deltas. */
struct IntervalSample
{
    uint64_t seq = 0;         ///< 1-based tick number
    uint64_t mono_ns = 0;     ///< monotonicNowNs() at the tick
    uint64_t interval_ns = 0; ///< time since the previous tick
    bool final_sample = false; ///< taken by stop()
    Snapshot snap;            ///< merged cumulative snapshot
    std::vector<CounterRate> rates;
    uint64_t rss_bytes = 0;
    std::vector<ProgressState> progress;
    /** Journal entries that arrived since the previous tick. */
    std::vector<Event> events;
};

/**
 * Per-interval counter rates from two consecutive snapshots.
 * Counters absent from @p prev (registered mid-run) rate from zero;
 * @p interval_ns <= 0 yields zero rates.
 */
std::vector<CounterRate> computeRates(const Snapshot &prev,
                                      const Snapshot &cur,
                                      uint64_t interval_ns);

/** Consumer of interval samples (OpenMetrics, JSONL, tests). */
class TelemetrySink
{
  public:
    virtual ~TelemetrySink() = default;

    /** One sampler tick. Called from the sampler thread. */
    virtual void onSample(const IntervalSample &sample) = 0;

    /** Final flush; the sampler has stopped. */
    virtual void close() {}
};

/** The background sampler driving all telemetry sinks. */
class TelemetrySampler
{
  public:
    static TelemetrySampler &global();

    TelemetrySampler() = default;
    ~TelemetrySampler();
    TelemetrySampler(const TelemetrySampler &) = delete;
    TelemetrySampler &operator=(const TelemetrySampler &) = delete;

    /** Attach a sink (before start()). */
    void addSink(std::shared_ptr<TelemetrySink> sink);

    /** Drop all sinks (test isolation; sampler must be stopped). */
    void clearSinks();

    /**
     * Also forward each tick's RSS reading into the phase profiler's
     * RssSampler buffer, replacing its own polling thread.
     */
    void setFeedProfilerRss(bool feed) { feed_profiler_rss_ = feed; }

    /**
     * Start sampling @p registry (nullptr = the global registry)
     * every @p period_ms. No-op when already running.
     */
    void start(uint64_t period_ms = 500,
               const Registry *registry = nullptr);

    /**
     * Take one final sample, stop the thread and close the sinks.
     * No-op when not running.
     */
    void stop();

    bool running() const { return running_.load(); }

    /** Ticks taken since start() (including the final one). */
    uint64_t samplesTaken() const { return samples_taken_.load(); }

    /**
     * Build and dispatch one sample now, synchronously (test entry
     * point; also used for the final sample in stop()).
     */
    void sampleNow(bool final_sample = false);

  private:
    void loop(uint64_t period_ms);

    std::vector<std::shared_ptr<TelemetrySink>> sinks_;
    const Registry *registry_ = nullptr;
    bool feed_profiler_rss_ = false;

    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<uint64_t> samples_taken_{0};
    std::mutex wake_mutex_;
    std::condition_variable wake_;
    bool stop_requested_ = false;

    /** Sampling state; only touched from sampleNow (serialized). */
    std::mutex sample_mutex_;
    Snapshot prev_snap_;
    uint64_t prev_ns_ = 0;
    uint64_t seq_ = 0;
    uint64_t last_event_seq_ = 0;
};

} // namespace obs
} // namespace dnasim

#endif // DNASIM_OBS_SNAPSHOT_HH
