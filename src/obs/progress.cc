#include "obs/progress.hh"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <sstream>

#ifdef _WIN32
#include <io.h>
#define DNASIM_ISATTY _isatty
#define DNASIM_FILENO _fileno
#else
#include <unistd.h>
#define DNASIM_ISATTY isatty
#define DNASIM_FILENO fileno
#endif

#include "obs/events.hh"

namespace dnasim
{
namespace obs
{

namespace detail
{

/** Shared state of one scope; the board holds a weak-ish copy. */
struct ProgressSlot
{
    std::string name;
    std::atomic<uint64_t> done{0};
    std::atomic<uint64_t> total{0};
    uint64_t start_ns = 0;
};

} // namespace detail

namespace
{

struct Board
{
    std::mutex mutex;
    std::vector<std::shared_ptr<detail::ProgressSlot>> slots;
};

Board &
board()
{
    static Board *b = new Board();
    return *b;
}

std::atomic<bool> heartbeat_enabled{false};

/** Tracks whether a TTY status line is currently painted. */
std::mutex paint_mutex;
size_t painted_width = 0;

std::string
fmtCount(uint64_t n)
{
    char buf[32];
    if (n >= 10'000'000)
        std::snprintf(buf, sizeof(buf), "%.1fM",
                      static_cast<double>(n) / 1e6);
    else if (n >= 10'000)
        std::snprintf(buf, sizeof(buf), "%.1fk",
                      static_cast<double>(n) / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(n));
    return buf;
}

} // anonymous namespace

ProgressScope::ProgressScope(std::string name, uint64_t total)
    : slot_(std::make_shared<detail::ProgressSlot>())
{
    slot_->name = std::move(name);
    slot_->total.store(total, std::memory_order_relaxed);
    slot_->start_ns = monotonicNowNs();
    {
        Board &b = board();
        std::lock_guard<std::mutex> lock(b.mutex);
        b.slots.push_back(slot_);
    }
    emitEvent("phase_begin", slot_->name,
              {{"total", std::to_string(total)}});
}

ProgressScope::~ProgressScope()
{
    {
        Board &b = board();
        std::lock_guard<std::mutex> lock(b.mutex);
        b.slots.erase(
            std::remove(b.slots.begin(), b.slots.end(), slot_),
            b.slots.end());
    }
    uint64_t done = slot_->done.load(std::memory_order_relaxed);
    uint64_t dur = monotonicNowNs() - slot_->start_ns;
    emitEvent("phase_end", slot_->name,
              {{"done", std::to_string(done)},
               {"duration_ns", std::to_string(dur)}});
}

void
ProgressScope::advance(uint64_t n)
{
    slot_->done.fetch_add(n, std::memory_order_relaxed);
}

void
ProgressScope::setTotal(uint64_t total)
{
    slot_->total.store(total, std::memory_order_relaxed);
}

uint64_t
ProgressScope::done() const
{
    return slot_->done.load(std::memory_order_relaxed);
}

std::vector<ProgressState>
progressSnapshot()
{
    Board &b = board();
    std::lock_guard<std::mutex> lock(b.mutex);
    std::vector<ProgressState> out;
    out.reserve(b.slots.size());
    for (const auto &slot : b.slots) {
        ProgressState s;
        s.name = slot->name;
        s.done = slot->done.load(std::memory_order_relaxed);
        s.total = slot->total.load(std::memory_order_relaxed);
        s.start_ns = slot->start_ns;
        out.push_back(std::move(s));
    }
    return out;
}

std::string
renderProgressLine(const std::vector<ProgressState> &states,
                   uint64_t now_ns, uint64_t rss_bytes)
{
    std::ostringstream os;
    bool first = true;
    for (const auto &s : states) {
        if (!first)
            os << " · ";
        first = false;
        os << s.name << " " << fmtCount(s.done);
        if (s.total > 0) {
            double pct = 100.0 * static_cast<double>(s.done) /
                         static_cast<double>(s.total);
            char buf[48];
            std::snprintf(buf, sizeof(buf), "/%s (%.1f%%)",
                          fmtCount(s.total).c_str(), pct);
            os << buf;
        }
        uint64_t elapsed =
            now_ns > s.start_ns ? now_ns - s.start_ns : 0;
        if (elapsed > 0 && s.done > 0) {
            double per_sec = static_cast<double>(s.done) * 1e9 /
                             static_cast<double>(elapsed);
            os << " "
               << fmtCount(static_cast<uint64_t>(per_sec)) << "/s";
        }
    }
    if (rss_bytes > 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), " · rss %.0f MB",
                      static_cast<double>(rss_bytes) / (1024.0 * 1024.0));
        os << buf;
    }
    return os.str();
}

bool
progressHeartbeatEnabled()
{
    return heartbeat_enabled.load(std::memory_order_relaxed);
}

void
setProgressHeartbeat(bool enabled)
{
    heartbeat_enabled.store(enabled, std::memory_order_relaxed);
}

bool
stderrIsTty()
{
    return DNASIM_ISATTY(DNASIM_FILENO(stderr)) != 0;
}

void
paintProgressHeartbeat(uint64_t rss_bytes)
{
    if (!progressHeartbeatEnabled())
        return;
    std::vector<ProgressState> states = progressSnapshot();
    if (states.empty())
        return;
    std::string line =
        renderProgressLine(states, monotonicNowNs(), rss_bytes);
    std::lock_guard<std::mutex> lock(paint_mutex);
    if (stderrIsTty()) {
        // Repaint in place, blank-padding over the previous line.
        std::string pad;
        if (line.size() < painted_width)
            pad.assign(painted_width - line.size(), ' ');
        std::fprintf(stderr, "\r%s%s", line.c_str(), pad.c_str());
        std::fflush(stderr);
        painted_width = std::max(painted_width, line.size());
    } else {
        std::fprintf(stderr, "progress: %s\n", line.c_str());
    }
}

void
clearProgressHeartbeat()
{
    std::lock_guard<std::mutex> lock(paint_mutex);
    if (painted_width > 0 && stderrIsTty()) {
        std::string pad(painted_width, ' ');
        std::fprintf(stderr, "\r%s\r", pad.c_str());
        std::fflush(stderr);
    }
    painted_width = 0;
}

} // namespace obs
} // namespace dnasim
