#include "obs/provenance.hh"

#include <atomic>
#include <cstdio>

#include "obs/json.hh"

namespace dnasim
{
namespace obs
{

namespace
{

// The publisher hands over a static string literal
// (simdTierName()), so a relaxed pointer store suffices — the
// setter sits on the batch-dispatch hot path and must cost no more
// than the stats gauge next to it.
std::atomic<const char *> g_simd_tier{nullptr};
std::atomic<uint64_t> g_threads{0};

} // anonymous namespace

std::string
gitRevision()
{
    static const std::string rev = []() -> std::string {
#ifdef DNASIM_SOURCE_DIR
        const std::string cmd = std::string("git -C \"") +
                                DNASIM_SOURCE_DIR +
                                "\" rev-parse --short HEAD "
                                "2>/dev/null";
        if (FILE *pipe = popen(cmd.c_str(), "r")) {
            char buf[64] = {0};
            std::string out;
            if (fgets(buf, sizeof(buf), pipe))
                out = buf;
            pclose(pipe);
            while (!out.empty() &&
                   (out.back() == '\n' || out.back() == '\r'))
                out.pop_back();
            if (!out.empty())
                return out;
        }
#endif
        return "unknown";
    }();
    return rev;
}

std::string
compilerVersion()
{
#if defined(__clang__)
    return std::string("clang ") + std::to_string(__clang_major__) +
           "." + std::to_string(__clang_minor__) + "." +
           std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
    return std::string("gcc ") + std::to_string(__GNUC__) + "." +
           std::to_string(__GNUC_MINOR__) + "." +
           std::to_string(__GNUC_PATCHLEVEL__);
#else
    return "unknown";
#endif
}

void
setProvenanceSimdTier(const char *tier)
{
    g_simd_tier.store(tier, std::memory_order_relaxed);
}

void
setProvenanceThreads(uint64_t threads)
{
    g_threads.store(threads, std::memory_order_relaxed);
}

BuildProvenance
buildProvenance()
{
    BuildProvenance p;
    p.git_rev = gitRevision();
    p.compiler = compilerVersion();
    const char *tier = g_simd_tier.load(std::memory_order_relaxed);
    p.simd_tier = tier != nullptr && *tier != '\0' ? tier
                                                   : "unknown";
    p.threads = g_threads.load(std::memory_order_relaxed);
    return p;
}

void
writeProvenance(JsonWriter &w, const char *key)
{
    const BuildProvenance p = buildProvenance();
    w.beginObject(key);
    w.value("git_rev", p.git_rev);
    w.value("compiler", p.compiler);
    w.value("simd_tier", p.simd_tier);
    w.value("threads", p.threads);
    w.endObject();
}

} // namespace obs
} // namespace dnasim
