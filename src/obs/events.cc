#include "obs/events.hh"

#include <chrono>
#include <deque>
#include <mutex>

namespace dnasim
{
namespace obs
{

namespace
{

/** Journal growth bound; oldest entries fall off past this. */
constexpr size_t kMaxBuffered = 65536;

struct JournalState
{
    mutable std::mutex mutex;
    std::deque<Event> events;
    uint64_t next_seq = 1;
};

JournalState &
state()
{
    // Leaked for the same reason as Registry::global(): emitters may
    // run during static destruction.
    static JournalState *s = new JournalState();
    return *s;
}

std::chrono::steady_clock::time_point
processOrigin()
{
    static const auto origin = std::chrono::steady_clock::now();
    return origin;
}

} // anonymous namespace

uint64_t
monotonicNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - processOrigin())
            .count());
}

EventJournal &
EventJournal::global()
{
    static EventJournal *j = new EventJournal();
    return *j;
}

uint64_t
EventJournal::emit(std::string kind, std::string name,
                   std::vector<std::pair<std::string, std::string>>
                       fields)
{
    Event e;
    e.ts_ns = monotonicNowNs();
    e.kind = std::move(kind);
    e.name = std::move(name);
    e.fields = std::move(fields);

    JournalState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    e.seq = s.next_seq++;
    s.events.push_back(std::move(e));
    if (s.events.size() > kMaxBuffered)
        s.events.pop_front();
    return s.events.back().seq;
}

std::vector<Event>
EventJournal::eventsSince(uint64_t after_seq) const
{
    JournalState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    std::vector<Event> out;
    for (const auto &e : s.events) {
        if (e.seq > after_seq)
            out.push_back(e);
    }
    return out;
}

uint64_t
EventJournal::lastSeq() const
{
    JournalState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.events.empty() ? s.next_seq - 1 : s.events.back().seq;
}

void
EventJournal::clear()
{
    JournalState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.events.clear();
}

uint64_t
emitEvent(std::string kind, std::string name,
          std::vector<std::pair<std::string, std::string>> fields)
{
    return EventJournal::global().emit(std::move(kind),
                                       std::move(name),
                                       std::move(fields));
}

} // namespace obs
} // namespace dnasim
