/**
 * @file
 * Minimal JSON support shared by the stats/trace exporters and the
 * bench-report funnel: a streaming writer (nesting, comma placement,
 * string escaping — the caller provides structure) and a small
 * recursive-descent parser (JsonValue / parseJson) used to ingest
 * dnasim.bench.v1 reports back into the bench ledger.
 */

#ifndef DNASIM_OBS_JSON_HH
#define DNASIM_OBS_JSON_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace dnasim
{
namespace obs
{

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Streaming JSON writer. Objects and arrays nest via
 * beginObject()/beginArray(); inside an object every value takes a
 * key, inside an array keys are omitted (pass an empty key).
 */
class JsonWriter
{
  public:
    /** @p indent spaces per level; 0 writes compact single-line. */
    explicit JsonWriter(std::ostream &os, int indent = 2);

    JsonWriter &beginObject(const std::string &key = "");
    JsonWriter &endObject();
    JsonWriter &beginArray(const std::string &key = "");
    JsonWriter &endArray();

    JsonWriter &value(const std::string &key, const std::string &v);
    JsonWriter &value(const std::string &key, const char *v);
    JsonWriter &value(const std::string &key, uint64_t v);
    JsonWriter &value(const std::string &key, int64_t v);
    JsonWriter &value(const std::string &key, double v);
    JsonWriter &value(const std::string &key, bool v);

    /** Emit @p raw verbatim as the value (must be valid JSON). */
    JsonWriter &rawValue(const std::string &key, const std::string &raw);

  private:
    void prefix(const std::string &key);
    void newlineIndent();

    std::ostream &os_;
    int indent_;
    /** One entry per open container: count of values emitted. */
    std::vector<size_t> stack_;
};

/**
 * A parsed JSON document node. Objects preserve insertion order;
 * numbers are held as double (sufficient for the report schemas —
 * counters above 2^53 would lose precision, none get there).
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed reads with fallbacks (never throw). */
    bool asBool(bool fallback = false) const;
    double asDouble(double fallback = 0.0) const;
    uint64_t asUint(uint64_t fallback = 0) const;
    const std::string &asString() const;

    /** Object member by key, nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Array elements (empty unless isArray()). */
    const std::vector<JsonValue> &array() const { return arr_; }

    /** Object members in document order (empty unless isObject()). */
    const std::vector<std::pair<std::string, JsonValue>> &
    object() const
    {
        return obj_;
    }

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::vector<std::pair<std::string, JsonValue>> obj_;
};

/**
 * Parse @p text into @p out. Returns false (and sets @p error when
 * non-null) on malformed input; trailing whitespace is allowed,
 * trailing garbage is not.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string *error = nullptr);

} // namespace obs
} // namespace dnasim

#endif // DNASIM_OBS_JSON_HH
