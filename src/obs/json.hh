/**
 * @file
 * A minimal streaming JSON writer, shared by the stats/trace
 * exporters and the bench-report funnel. Handles nesting, comma
 * placement and string escaping; the caller provides structure.
 */

#ifndef DNASIM_OBS_JSON_HH
#define DNASIM_OBS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace dnasim
{
namespace obs
{

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Streaming JSON writer. Objects and arrays nest via
 * beginObject()/beginArray(); inside an object every value takes a
 * key, inside an array keys are omitted (pass an empty key).
 */
class JsonWriter
{
  public:
    /** @p indent spaces per level; 0 writes compact single-line. */
    explicit JsonWriter(std::ostream &os, int indent = 2);

    JsonWriter &beginObject(const std::string &key = "");
    JsonWriter &endObject();
    JsonWriter &beginArray(const std::string &key = "");
    JsonWriter &endArray();

    JsonWriter &value(const std::string &key, const std::string &v);
    JsonWriter &value(const std::string &key, const char *v);
    JsonWriter &value(const std::string &key, uint64_t v);
    JsonWriter &value(const std::string &key, int64_t v);
    JsonWriter &value(const std::string &key, double v);
    JsonWriter &value(const std::string &key, bool v);

    /** Emit @p raw verbatim as the value (must be valid JSON). */
    JsonWriter &rawValue(const std::string &key, const std::string &raw);

  private:
    void prefix(const std::string &key);
    void newlineIndent();

    std::ostream &os_;
    int indent_;
    /** One entry per open container: count of values emitted. */
    std::vector<size_t> stack_;
};

} // namespace obs
} // namespace dnasim

#endif // DNASIM_OBS_JSON_HH
