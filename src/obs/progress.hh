/**
 * @file
 * Progress heartbeats for long-running loops.
 *
 * A ProgressScope brackets one logical phase (simulate, cluster,
 * reconstruct, retrieve): it registers the phase with the global
 * progress board, the loop calls advance() as items complete, and
 * observers — the telemetry sampler and the live stderr status line
 * — read items-done/items-total without ever touching the loop.
 *
 * advance() is one relaxed atomic add, cheap enough for per-cluster
 * or per-read granularity (not per-base). Scopes nest; the board
 * lists active scopes in creation order. Opening and closing a scope
 * emits "phase_begin"/"phase_end" events into the event journal, so
 * phase transitions land in the telemetry stream even between
 * samples.
 *
 * The stderr heartbeat is TTY-aware: when enabled it repaints one
 * carriage-returned status line on a real terminal and prints plain
 * newline-terminated lines otherwise (so logs stay greppable).
 * Everything goes to stderr; stdout and all data outputs remain
 * byte-identical with progress enabled.
 */

#ifndef DNASIM_OBS_PROGRESS_HH
#define DNASIM_OBS_PROGRESS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dnasim
{
namespace obs
{

/** Point-in-time view of one active scope. */
struct ProgressState
{
    std::string name;
    uint64_t done = 0;
    uint64_t total = 0;   ///< 0 = unknown / open-ended
    uint64_t start_ns = 0; ///< monotonicNowNs() at scope open
};

namespace detail
{
struct ProgressSlot;
} // namespace detail

/** RAII progress reporter for one phase. */
class ProgressScope
{
  public:
    /**
     * Open a phase named @p name expecting @p total items (0 when
     * unknown). Registers with the board and journals phase_begin.
     */
    ProgressScope(std::string name, uint64_t total);
    ~ProgressScope();

    ProgressScope(const ProgressScope &) = delete;
    ProgressScope &operator=(const ProgressScope &) = delete;

    /** Mark @p n more items complete (relaxed atomic add). */
    void advance(uint64_t n = 1);

    /** Adjust the expected total (discovered mid-phase). */
    void setTotal(uint64_t total);

    uint64_t done() const;

  private:
    std::shared_ptr<detail::ProgressSlot> slot_;
};

/** Active scopes, oldest first (empty when no phase is running). */
std::vector<ProgressState> progressSnapshot();

/**
 * Render @p states as one human status line, e.g.
 * "simulate 1200/5000 (24.0%) 38.1k/s · cluster 10/..". @p now_ns
 * supplies the rate clock (monotonicNowNs()).
 */
std::string renderProgressLine(const std::vector<ProgressState> &states,
                               uint64_t now_ns,
                               uint64_t rss_bytes = 0);

/**
 * Whether the stderr heartbeat is enabled. The CLI sets this from
 * --progress {auto,always,never}; "auto" resolves to stderr-is-a-TTY.
 */
bool progressHeartbeatEnabled();
void setProgressHeartbeat(bool enabled);

/** True when stderr is an interactive terminal. */
bool stderrIsTty();

/**
 * Paint the heartbeat for the current board state onto stderr (no-op
 * when disabled or no scope is active). Called by the telemetry
 * sampler each tick; safe from any thread.
 */
void paintProgressHeartbeat(uint64_t rss_bytes);

/** Erase a previously painted TTY status line (end of run). */
void clearProgressHeartbeat();

} // namespace obs
} // namespace dnasim

#endif // DNASIM_OBS_PROGRESS_HH
