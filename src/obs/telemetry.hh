/**
 * @file
 * The dnasim.telemetry.v1 JSONL stream: an append-only file with one
 * compact JSON document per line, written by the telemetry sampler.
 *
 * Two line kinds share the stream, discriminated by "kind":
 *
 *   {"schema":"dnasim.telemetry.v1","kind":"sample","seq":3,
 *    "ts_ns":...,"interval_ns":...,"final":false,"rss_bytes":...,
 *    "counters":[{"name":...,"value":...,"delta":...,
 *                 "per_sec":...}, ...],
 *    "gauges":[{"name":...,"value":...}, ...],
 *    "timers":[{"name":...,"count":...,"total_ns":...,"p50_ns":...,
 *               "p90_ns":...,"p99_ns":...,"p999_ns":...}, ...],
 *    "progress":[{"phase":...,"done":...,"total":...}, ...]}
 *
 *   {"schema":"dnasim.telemetry.v1","kind":"event","seq":...,
 *    "ts_ns":...,"event":"phase_begin","name":"simulate",
 *    "fields":{...}}
 *
 * Event lines are interleaved before the sample that collected them,
 * in journal order. The file is append-only so `dnasim watch
 * --follow` and `tail -f` can stream it live; every line is a
 * self-contained document (a truncated final line is the only
 * possible corruption after a crash).
 */

#ifndef DNASIM_OBS_TELEMETRY_HH
#define DNASIM_OBS_TELEMETRY_HH

#include <cstdio>
#include <string>

#include "obs/snapshot.hh"

namespace dnasim
{
namespace obs
{

/** One "sample" line (no trailing newline). */
std::string telemetrySampleLine(const IntervalSample &sample);

/** One "event" line (no trailing newline). */
std::string telemetryEventLine(const Event &event);

/**
 * The "meta" line opening every stream: the shared build-provenance
 * header (git rev, compiler, SIMD tier, thread count). No trailing
 * newline.
 */
std::string telemetryMetaLine();

/** Sink appending dnasim.telemetry.v1 lines to a file. */
class JsonlTelemetrySink : public TelemetrySink
{
  public:
    explicit JsonlTelemetrySink(std::string path);
    ~JsonlTelemetrySink() override;

    void onSample(const IntervalSample &sample) override;
    void close() override;

    /** False after any open/write failure (already warned). */
    bool ok() const { return ok_; }

  private:
    void writeLine(const std::string &line);

    std::string path_;
    std::FILE *file_ = nullptr;
    bool ok_ = true;
    bool warned_ = false;
};

} // namespace obs
} // namespace dnasim

#endif // DNASIM_OBS_TELEMETRY_HH
