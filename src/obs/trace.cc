#include "obs/trace.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#endif

#include "base/logging.hh"
#include "obs/json.hh"
#include "obs/outfile.hh"

namespace dnasim
{
namespace obs
{

namespace
{

/** Small dense thread ids for the trace's tid field. */
uint32_t
threadId()
{
    static std::atomic<uint32_t> next{1};
    thread_local uint32_t id = next.fetch_add(1);
    return id;
}

void
flushTraceAtExit()
{
    Trace::global().flushExitFile();
}

} // anonymous namespace

uint64_t
threadCpuNs()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    struct timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
        return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
               static_cast<uint64_t>(ts.tv_nsec);
    }
#endif
    return 0;
}

Trace &
Trace::global()
{
    static Trace *t = new Trace();
    return *t;
}

void
Trace::enable()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    origin_ = std::chrono::steady_clock::now();
    enabled_.store(true, std::memory_order_relaxed);
}

void
Trace::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

uint64_t
Trace::nowNs() const
{
    if (!enabled())
        return 0;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - origin_)
            .count());
}

void
Trace::recordComplete(std::string name, std::string cat,
                      uint64_t ts_ns, uint64_t dur_ns,
                      std::string args_json, uint64_t cpu_ns)
{
    if (!enabled())
        return;
    uint32_t tid = threadId();
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(Event{std::move(name), std::move(cat),
                            std::move(args_json), 'X', ts_ns, dur_ns,
                            cpu_ns, tid});
}

void
Trace::recordInstant(std::string name, std::string cat)
{
    if (!enabled())
        return;
    uint64_t ts = nowNs();
    uint32_t tid = threadId();
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(Event{std::move(name), std::move(cat),
                            std::string(), 'i', ts, 0, 0, tid});
}

size_t
Trace::numEvents() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::vector<TraceSpan>
Trace::completeSpans() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TraceSpan> spans;
    spans.reserve(events_.size());
    for (const auto &e : events_) {
        if (e.ph != 'X')
            continue;
        spans.push_back(TraceSpan{e.name, e.cat, e.ts_ns, e.dur_ns,
                                  e.cpu_ns, e.tid});
    }
    return spans;
}

void
Trace::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    JsonWriter w(os, 0);
    w.beginObject();
    w.value("displayTimeUnit", "ms");
    w.beginArray("traceEvents");
    for (const auto &e : events_) {
        w.beginObject();
        w.value("name", e.name);
        w.value("cat", e.cat.empty() ? "dnasim" : e.cat);
        w.value("ph", std::string(1, e.ph));
        // Chrome trace timestamps are microseconds; keep sub-us
        // precision as decimals.
        w.value("ts", static_cast<double>(e.ts_ns) / 1000.0);
        if (e.ph == 'X')
            w.value("dur", static_cast<double>(e.dur_ns) / 1000.0);
        if (e.ph == 'i')
            w.value("s", "t");
        w.value("pid", static_cast<uint64_t>(1));
        w.value("tid", static_cast<uint64_t>(e.tid));
        if (!e.args.empty()) {
            w.rawValue("args", e.args);
        } else if (e.cpu_ns > 0) {
            w.beginObject("args");
            w.value("cpu_ns", e.cpu_ns);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

bool
Trace::writeFile(const std::string &path) const
{
    std::string error;
    if (!prepareOutputPath(path, &error)) {
        warn("trace: ", error);
        return false;
    }
    std::ofstream os(path);
    if (!os) {
        warn("trace: cannot open '", path,
             "': ", std::strerror(errno));
        return false;
    }
    writeJson(os);
    return os.good();
}

void
Trace::setExitFlushPath(const std::string &path)
{
    std::lock_guard<std::mutex> lock(flush_mutex_);
    exit_path_ = path;
    exit_flushed_ = false;
    if (!exit_registered_) {
        exit_registered_ = true;
        std::atexit(flushTraceAtExit);
    }
}

bool
Trace::flushExitFile()
{
    std::lock_guard<std::mutex> lock(flush_mutex_);
    if (exit_path_.empty() || exit_flushed_)
        return true;
    exit_flushed_ = true;
    return writeFile(exit_path_);
}

void
Trace::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
}

} // namespace obs
} // namespace dnasim
