/**
 * @file
 * The `dnasim explain` subcommand: failure forensics with ground
 * truth.
 *
 * Re-simulates a dataset with lineage recording on, reconstructs it
 * (optionally through the full pool/shuffle/re-cluster path), and
 * runs the attribution engine (analysis/lineage.hh) so every
 * residual error is classified into a concrete cause — the question
 * "why is this consensus base wrong?" answered from the simulator's
 * privileged knowledge of where every error came from.
 *
 * Every stage is deterministic for a fixed seed at any --threads and
 * --simd setting, so the text report, the JSON report and the
 * --lineage-out stream are byte-identical across runs.
 */

#include "cli/commands.hh"

#include <iostream>
#include <numeric>

#include "analysis/accuracy.hh"
#include "analysis/lineage.hh"
#include "base/logging.hh"
#include "core/channel_simulator.hh"
#include "core/coverage.hh"
#include "data/io.hh"
#include "obs/progress.hh"
#include "par/thread_pool.hh"

namespace dnasim
{

int
cmdExplain(const Args &args)
{
    if (args.positional().size() < 2) {
        DNASIM_FATAL(
            "usage: dnasim explain <dataset.evyat> "
            "[--model second-order] [--algo iterative] "
            "[--coverage N] [--recluster] [--json] [--buckets B] "
            "[--lineage-out lineage.jsonl]");
    }
    Dataset real = readEvyatFile(args.positional()[1]);
    ErrorProfile profile = errorProfileFromArgs(args, real);
    auto model = makeModel(args.get("model", "second-order"),
                           profile);
    auto algo = makeReconstructor(args.get("algo", "iterative"));
    Rng rng(args.getSeed("seed", 0xe4b1a1));

    // Simulate with the lineage log attached: same strands as a
    // plain run, plus the ground truth of every injected error.
    ChannelSimulator sim(*model);
    LineageLog lineage;
    Dataset simulated;
    const auto coverage =
        static_cast<size_t>(args.getInt("coverage", 0));
    if (coverage > 0) {
        std::vector<Strand> refs;
        refs.reserve(real.size());
        for (const auto &c : real)
            refs.push_back(c.reference);
        FixedCoverage cov(coverage);
        simulated = sim.simulate(refs, cov, rng, &lineage);
    } else {
        simulated = sim.simulateLike(real, rng, &lineage);
    }

    size_t design_len = 0;
    for (const auto &c : simulated)
        design_len = std::max(design_len, c.reference.size());

    LineageInputs inputs;
    inputs.truth = &simulated;
    inputs.lineage = &lineage;
    inputs.heatmap_buckets =
        static_cast<size_t>(args.getInt("buckets", 11));

    // Recluster-mode storage must outlive the attribution call.
    std::vector<Strand> pool;
    std::vector<ReadIdentity> identity;
    std::vector<ReadAssignment> assignments;
    std::vector<ReadCluster> clusters;
    std::vector<Strand> estimates;

    if (args.has("recluster")) {
        // Pool the reads with their identities and shuffle both
        // through one permutation, so ground truth follows every
        // read into whatever cluster it lands in.
        std::vector<Strand> raw;
        std::vector<ReadIdentity> raw_ids;
        for (size_t i = 0; i < simulated.size(); ++i) {
            const auto &copies = simulated[i].copies;
            for (size_t k = 0; k < copies.size(); ++k) {
                raw.push_back(copies[k]);
                raw_ids.push_back({static_cast<uint32_t>(i),
                                   static_cast<uint32_t>(k)});
            }
        }
        std::vector<size_t> perm(raw.size());
        std::iota(perm.begin(), perm.end(), size_t{0});
        rng.shuffle(perm);
        pool.resize(raw.size());
        identity.resize(raw.size());
        for (size_t i = 0; i < perm.size(); ++i) {
            pool[i] = std::move(raw[perm[i]]);
            identity[i] = raw_ids[perm[i]];
        }

        clusters = clusterReads(pool, clusterOptionsFromArgs(args),
                                &assignments);

        // Reconstruct every recovered cluster with pre-forked
        // per-cluster streams (identical at any thread count).
        std::vector<Rng> streams =
            forkClusterStreams(rng, clusters.size());
        obs::ProgressScope progress("reconstruct", clusters.size());
        estimates = par::parallelTransform(
            clusters.size(), [&](size_t i) {
                std::vector<Strand> copies;
                copies.reserve(clusters[i].members.size());
                for (size_t m : clusters[i].members)
                    copies.push_back(pool[m]);
                auto estimate = algo->reconstruct(
                    copies, design_len, streams[i]);
                progress.advance();
                return estimate;
            });

        inputs.clusters = &clusters;
        inputs.pool = &pool;
        inputs.identity = &identity;
        inputs.assignments = &assignments;
    } else {
        estimates = reconstructAll(simulated, *algo, rng);
    }
    inputs.estimates = &estimates;

    LineageReport report = attributeLineage(inputs);

    if (args.has("lineage-out")) {
        const std::string lineage_out = args.get("lineage-out");
        std::string error;
        if (!writeLineageJsonl(lineage_out, inputs, report, &error))
            DNASIM_FATAL("lineage: ", error);
        inform("lineage: wrote ", lineage_out, " (",
               report.failures.size(), " classified failures)");
    }

    if (args.has("json"))
        std::cout << lineageReportJson(report);
    else
        std::cout << lineageReportText(report);
    return 0;
}

} // namespace dnasim
