/**
 * @file
 * The `dnasim bench` verb family over the bench trajectory ledger
 * (obs/history.hh):
 *
 *   bench ingest <input>... [--ledger FILE]
 *       fold BENCH_*.json reports (files or directories) into the
 *       append-only JSONL ledger, deduplicating repeats
 *   bench diff <baseline> <candidate> [--threshold p] [--sigma k]
 *              [--mem-threshold p] [--mem-gate]
 *       compare two run sets with the noise-aware verdict; exits 2
 *       when a benchmark regressed (CI perf-gate contract). RSS
 *       high-water deltas are advisory unless --mem-gate.
 *   bench list [--ledger FILE]
 *       print the per-key trajectory summary of a ledger
 *
 * <baseline>/<candidate>/<input> each accept a single .json report,
 * a .jsonl ledger, or a directory scanned recursively.
 */

#include "cli/commands.hh"

#include <iostream>

#include "base/logging.hh"
#include "obs/history.hh"

namespace dnasim
{

namespace
{

constexpr const char *kDefaultLedger = "BENCH_LEDGER.jsonl";

void
reportLoadErrors(const std::vector<std::string> &errors)
{
    for (const auto &e : errors)
        warn("bench: skipped unparseable input: ", e);
}

int
benchIngest(const Args &args)
{
    const auto &pos = args.positional();
    if (pos.size() < 3) {
        std::cerr << "usage: dnasim bench ingest <input>... "
                     "[--ledger FILE]\n";
        return 1;
    }
    const std::string ledger = args.get("ledger", kDefaultLedger);

    size_t seen = 0, added = 0;
    for (size_t i = 2; i < pos.size(); ++i) {
        std::vector<std::string> errors;
        for (const auto &run : obs::loadBenchInput(pos[i], &errors)) {
            ++seen;
            bool appended = false;
            std::string error;
            if (!obs::appendToLedger(ledger, run, &appended,
                                     &error)) {
                warn("bench: ", error);
                return 1;
            }
            added += appended ? 1 : 0;
        }
        reportLoadErrors(errors);
    }
    std::cout << "bench: ingested " << seen << " runs into " << ledger
              << " (" << added << " new, " << (seen - added)
              << " duplicate)\n";
    return seen == 0 ? 1 : 0;
}

int
benchDiff(const Args &args)
{
    const auto &pos = args.positional();
    if (pos.size() != 4) {
        std::cerr << "usage: dnasim bench diff <baseline> "
                     "<candidate> [--threshold p] [--sigma k] "
                     "[--mem-threshold p] [--mem-gate] [--json]\n";
        return 1;
    }
    obs::DiffOptions options;
    options.threshold = args.getDouble("threshold", options.threshold);
    options.sigma = args.getDouble("sigma", options.sigma);
    options.mem_threshold =
        args.getDouble("mem-threshold", options.mem_threshold);
    options.mem_gate = args.has("mem-gate");

    std::vector<std::string> errors;
    auto baseline = obs::loadBenchInput(pos[2], &errors);
    auto candidate = obs::loadBenchInput(pos[3], &errors);
    reportLoadErrors(errors);
    if (baseline.empty()) {
        warn("bench: no baseline runs in ", pos[2]);
        return 1;
    }
    if (candidate.empty()) {
        warn("bench: no candidate runs in ", pos[3]);
        return 1;
    }

    obs::DiffReport report =
        obs::diffBenchRuns(baseline, candidate, options);
    if (args.has("json"))
        std::cout << obs::diffToJson(report, options);
    else
        std::cout << obs::diffToText(report, options);
    // 0 = clean, 2 = regression; 1 stays reserved for usage/IO
    // errors so CI can tell "slow" apart from "broken".
    return report.ok() ? 0 : 2;
}

int
benchList(const Args &args)
{
    const std::string ledger = args.get("ledger", kDefaultLedger);
    std::vector<std::string> errors;
    auto runs = obs::readLedger(ledger, &errors);
    reportLoadErrors(errors);
    if (runs.empty()) {
        warn("bench: no runs in ledger ", ledger);
        return 1;
    }
    std::cout << obs::ledgerSummary(runs);
    return 0;
}

} // anonymous namespace

int
cmdBench(const Args &args)
{
    const auto &pos = args.positional();
    const std::string verb = pos.size() > 1 ? pos[1] : "";
    if (verb == "ingest")
        return benchIngest(args);
    if (verb == "diff")
        return benchDiff(args);
    if (verb == "list")
        return benchList(args);
    std::cerr << "usage: dnasim bench <ingest|diff|list> [args]\n"
                 "  ingest <input>... [--ledger FILE]   fold reports "
                 "into the ledger\n"
                 "  diff <baseline> <candidate>         noise-aware "
                 "perf comparison\n"
                 "       [--threshold p] [--sigma k] "
                 "[--mem-threshold p] [--mem-gate] [--json]\n"
                 "  list [--ledger FILE]                trajectory "
                 "summary per run key\n";
    return verb.empty() ? 1 : (verb == "help" ? 0 : 1);
}

} // namespace dnasim
