/**
 * @file
 * `dnasim ingest` — pack text read sets (plain lines, FASTA, evyat)
 * into mmap-backed dnapool files in bounded memory. The entry point
 * of the out-of-core workflow: ingest once, then cluster and
 * reconstruct any number of times against the packed pool without
 * re-parsing text or holding the reads in RAM.
 */

#include "cli/commands.hh"

#include <iostream>

#include "base/logging.hh"
#include "base/strand_pool.hh"
#include "base/table.hh"
#include "pipeline/checkpoint.hh"

namespace dnasim
{

namespace
{

IngestFormat
parseIngestFormat(const std::string &name)
{
    if (name == "auto")
        return IngestFormat::Auto;
    if (name == "lines")
        return IngestFormat::Lines;
    if (name == "fasta")
        return IngestFormat::Fasta;
    if (name == "evyat")
        return IngestFormat::Evyat;
    DNASIM_FATAL("unknown ingest format '", name,
                 "'; expected auto, lines, fasta or evyat");
}

} // anonymous namespace

int
cmdIngest(const Args &args)
{
    if (args.positional().size() < 2) {
        DNASIM_FATAL("usage: dnasim ingest <reads.{txt,fasta,evyat}> "
                     "[--format auto|lines|fasta|evyat] "
                     "[--out pool.dnapool | --checkpoint-dir DIR] "
                     "[--origins origins.u32] [--max-reads N]");
    }
    const std::string &input = args.positional()[1];

    IngestOptions options;
    options.format = parseIngestFormat(args.get("format", "auto"));
    if (options.format == IngestFormat::Auto)
        options.format = sniffIngestFormat(input);
    options.max_reads =
        static_cast<size_t>(args.getInt("max-reads", 0));

    // A checkpoint directory stands in for a completed simulate
    // stage: the packed reads (and, for clustered input, the
    // ground-truth origins) land exactly where `dnasim cluster
    // --checkpoint-dir` expects them.
    const bool to_checkpoint = args.has("checkpoint-dir");
    CheckpointDir ckpt(args.get("checkpoint-dir"));
    std::string pool_out = to_checkpoint
                               ? ckpt.readsPath()
                               : args.get("out", input + ".dnapool");
    if (args.has("origins"))
        options.origins_path = args.get("origins");
    else if (to_checkpoint && options.format == IngestFormat::Evyat)
        options.origins_path = ckpt.originsPath();

    IngestResult result;
    std::string error;
    if (!ingestToPool(input, pool_out, options, result, &error))
        DNASIM_FATAL("ingest: ", error);

    if (to_checkpoint) {
        CheckpointManifest manifest;
        manifest.stage = "simulate";
        manifest.num_reads = result.reads;
        manifest.config = {
            {"command", "ingest"},
            {"input", input},
            {"format", ingestFormatName(options.format)},
        };
        if (!ckpt.writeManifest(manifest, &error))
            DNASIM_FATAL("ingest: ", error);
    }

    TextTable table("ingest");
    table.setHeader(
        {"format", "reads", "skipped", "clusters", "bases"});
    table.addRow({ingestFormatName(options.format),
                  std::to_string(result.reads),
                  std::to_string(result.skipped),
                  std::to_string(result.clusters),
                  std::to_string(result.total_bases)});
    table.print(std::cout);
    std::cout << "wrote " << pool_out;
    if (!options.origins_path.empty())
        std::cout << " and " << options.origins_path;
    std::cout << "\n";
    return 0;
}

} // namespace dnasim
