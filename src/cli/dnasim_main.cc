/**
 * @file
 * Entry point of the dnasim command-line tool.
 *
 * Observability flags understood before any subcommand runs:
 *   --stats-out=FILE  write a dnasim.stats.v1 JSON snapshot on exit
 *   --stats           dump the stats snapshot as text to stderr
 *   --trace-out=FILE  enable tracing, write Chrome trace JSON on exit
 *                     (also flushed from an atexit hook, so an early
 *                     std::exit still yields a loadable file)
 *   --profile         enable tracing + RSS sampling, print the
 *                     hierarchical phase profile to stderr on exit;
 *                     combined with --stats-out the JSON snapshot
 *                     gains a "profile" section
 *   --metrics-out=FILE    stream an OpenMetrics text snapshot to
 *                     FILE on every sampler tick (atomic rewrite)
 *   --telemetry-out=FILE  append dnasim.telemetry.v1 JSONL samples
 *                     and events to FILE (tail with `dnasim watch`)
 *   --telemetry-interval=MS  sampler period, default 500
 *   --progress={auto,always,never}  live stderr status line; auto
 *                     paints only on a TTY
 *   --threads=N       worker threads for parallel loops (default:
 *                     DNASIM_THREADS or hardware concurrency);
 *                     results are identical for every N
 *   --simd={auto,scalar,avx2,avx512}  batch alignment kernel tier
 *                     (default: DNASIM_SIMD or the widest tier the
 *                     CPU supports); results are identical for
 *                     every tier
 *   --editops={auto,reference}  edit-script engine (default:
 *                     DNASIM_EDITOPS or auto); reference forces the
 *                     flat DP the bit-vector/banded tiers are pinned
 *                     to; results are identical for every engine
 *
 * Telemetry only ever writes to its own files and stderr; stdout and
 * all data outputs stay byte-identical whether or not it is enabled.
 */

#include <cstring>
#include <iostream>
#include <memory>

#include "align/edit_script.hh"
#include "align/simd_dispatch.hh"
#include "base/logging.hh"
#include "cli/args.hh"
#include "cli/commands.hh"
#include "obs/openmetrics.hh"
#include "obs/profile.hh"
#include "obs/progress.hh"
#include "obs/report.hh"
#include "obs/snapshot.hh"
#include "obs/stats.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "par/thread_pool.hh"

namespace
{

int
dispatch(const std::string &command, const dnasim::Args &args)
{
    using namespace dnasim;

    if (command == "generate")
        return cmdGenerate(args);
    if (command == "calibrate")
        return cmdCalibrate(args);
    if (command == "simulate")
        return cmdSimulate(args);
    if (command == "reconstruct")
        return cmdReconstruct(args);
    if (command == "analyze")
        return cmdAnalyze(args);
    if (command == "ingest")
        return cmdIngest(args);
    if (command == "cluster")
        return cmdCluster(args);
    if (command == "explain")
        return cmdExplain(args);
    if (command == "roundtrip")
        return cmdRoundtrip(args);
    if (command == "bench")
        return cmdBench(args);
    if (command == "watch")
        return cmdWatch(args);
    if (command == "help" || command.empty()) {
        printUsage();
        return command.empty() ? 1 : 0;
    }
    warn("unknown command '", command, "'");
    printUsage();
    return 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace dnasim;

    if (argc < 2) {
        printUsage();
        return 1;
    }

    Args args(argc - 1, argv + 1);
    const std::string &command = args.positional().empty()
                                     ? std::string()
                                     : args.positional()[0];

    const std::string stats_out = args.get("stats-out");
    const std::string trace_out = args.get("trace-out");
    const std::string metrics_out = args.get("metrics-out");
    const std::string telemetry_out = args.get("telemetry-out");
    const auto telemetry_interval = static_cast<uint64_t>(
        args.getInt("telemetry-interval", 500));
    // Bare --progress is shorthand for --progress=auto.
    std::string progress_mode = args.get("progress", "auto");
    if (progress_mode.empty())
        progress_mode = "auto";
    const bool stats_text = args.has("stats");
    // Bare --profile is the phase profiler; simulate's valued
    // --profile FILE (calibrated error profile) must not enable it.
    const bool profile =
        args.has("profile") && args.get("profile").empty();

    par::setThreads(
        static_cast<size_t>(args.getInt("threads", 0)));

    // Resolve the SIMD tier up front: an invalid --simd fails fast,
    // and the resolution logs the one-time startup line and
    // publishes the align.simd.tier gauge before any work runs.
    const std::string simd = args.get("simd", "auto");
    if (!applySimdOverride(simd.empty() ? "auto" : simd)) {
        DNASIM_FATAL("--simd must be auto, scalar, avx2 or avx512, "
                     "got '", simd, "'");
    }
    activeSimdTier();

    // Same fail-fast treatment for the edit-script engine escape
    // hatch; an explicit flag outranks DNASIM_EDITOPS.
    const std::string editops = args.get("editops", "");
    if (!editops.empty()) {
        auto parsed = parseEditOpsEngine(editops);
        if (!parsed) {
            DNASIM_FATAL("--editops must be auto or reference, got '",
                         editops, "'");
        }
        setEditOpsEngineOverride(*parsed);
    }

    if (progress_mode != "auto" && progress_mode != "always" &&
        progress_mode != "never") {
        DNASIM_FATAL("--progress must be auto, always or never, "
                     "got '", progress_mode, "'");
    }
    const bool heartbeat =
        progress_mode == "always" ||
        (progress_mode == "auto" && obs::stderrIsTty());
    obs::setProgressHeartbeat(heartbeat);

    if (!trace_out.empty() || profile) {
        obs::Trace::global().enable();
        // A subcommand (or a dependency) may call std::exit or fail
        // after tracing started; the atexit hook still flushes a
        // loadable trace file in that case.
        if (!trace_out.empty())
            obs::Trace::global().setExitFlushPath(trace_out);
    }

    // One background sampler drives every streaming consumer: the
    // OpenMetrics file, the telemetry JSONL, the stderr heartbeat —
    // and, when --profile is also active, the phase profiler's RSS
    // buffer (instead of RssSampler's own polling thread).
    auto &sampler = obs::TelemetrySampler::global();
    const bool telemetry = !metrics_out.empty() ||
                           !telemetry_out.empty() || heartbeat;
    std::shared_ptr<obs::OpenMetricsSink> metrics_sink;
    std::shared_ptr<obs::JsonlTelemetrySink> telemetry_sink;
    if (telemetry) {
        if (!metrics_out.empty()) {
            metrics_sink =
                std::make_shared<obs::OpenMetricsSink>(metrics_out);
            sampler.addSink(metrics_sink);
        }
        if (!telemetry_out.empty()) {
            telemetry_sink =
                std::make_shared<obs::JsonlTelemetrySink>(
                    telemetry_out);
            sampler.addSink(telemetry_sink);
        }
        sampler.setFeedProfilerRss(profile);
        sampler.start(telemetry_interval);
    } else if (profile) {
        obs::RssSampler::global().start();
    }
    if (!stats_out.empty())
        obs::startLogCapture();

    int rc = 1;
    try {
        auto &reg = obs::Registry::global();
        obs::ScopedTimer timer(
            reg.timer("cli." + command + ".time",
                      "wall time of the '" + command + "' command"));
        obs::ScopedTrace span(
            command.empty() ? "help" : command.c_str(), "cli");
        rc = dispatch(command, args);
    } catch (const FatalError &) {
        // Message already printed by fatal(); still flush whatever
        // stats and trace data accumulated before the failure.
    }

    if (telemetry) {
        // Takes one final sample (so short runs still get one),
        // clears the heartbeat line and closes the sinks.
        sampler.stop();
        if (metrics_sink && metrics_sink->ok())
            inform("metrics: wrote ", metrics_out);
        if (telemetry_sink && telemetry_sink->ok()) {
            inform("telemetry: wrote ", telemetry_out, " (",
                   sampler.samplesTaken(), " samples)");
        }
    }
    if (profile)
        obs::RssSampler::global().stop();

    if (!stats_out.empty() || stats_text || !trace_out.empty() ||
        profile) {
        obs::Profile prof;
        if (profile)
            prof = obs::buildProfile(obs::Trace::global());
        obs::Snapshot snap = obs::Registry::global().snapshot();
        if (stats_text)
            std::cerr << obs::statsToText(snap);
        if (profile)
            std::cerr << obs::profileToText(prof);
        if (!stats_out.empty()) {
            if (obs::writeStatsJson(stats_out, snap,
                                    obs::capturedLog(),
                                    profile ? &prof : nullptr)) {
                inform("stats: wrote ", stats_out);
            } else {
                warn("stats: cannot write ", stats_out);
                rc = rc ? rc : 1;
            }
        }
        if (!trace_out.empty()) {
            if (obs::Trace::global().flushExitFile()) {
                inform("trace: wrote ", trace_out, " (",
                       obs::Trace::global().numEvents(),
                       " events)");
            } else {
                warn("trace: cannot write ", trace_out);
                rc = rc ? rc : 1;
            }
        }
    }
    return rc;
}
