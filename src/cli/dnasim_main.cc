/**
 * @file
 * Entry point of the dnasim command-line tool.
 */

#include <cstring>
#include <iostream>

#include "base/logging.hh"
#include "cli/args.hh"
#include "cli/commands.hh"

int
main(int argc, char **argv)
{
    using namespace dnasim;

    if (argc < 2) {
        printUsage();
        return 1;
    }

    Args args(argc - 1, argv + 1);
    const std::string &command = args.positional().empty()
                                     ? std::string()
                                     : args.positional()[0];
    try {
        if (command == "generate")
            return cmdGenerate(args);
        if (command == "calibrate")
            return cmdCalibrate(args);
        if (command == "simulate")
            return cmdSimulate(args);
        if (command == "reconstruct")
            return cmdReconstruct(args);
        if (command == "analyze")
            return cmdAnalyze(args);
        if (command == "roundtrip")
            return cmdRoundtrip(args);
        if (command == "help" || command.empty()) {
            printUsage();
            return command.empty() ? 1 : 0;
        }
        std::cerr << "unknown command '" << command << "'\n\n";
        printUsage();
        return 1;
    } catch (const FatalError &) {
        // Message already printed by fatal().
        return 1;
    }
}
