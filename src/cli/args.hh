/**
 * @file
 * A minimal command-line flag parser for the dnasim tool and the
 * bench harnesses: --flag value and --flag=value forms, with typed
 * accessors and defaults.
 */

#ifndef DNASIM_CLI_ARGS_HH
#define DNASIM_CLI_ARGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dnasim
{

/** Parsed command line: positionals plus --key value options. */
class Args
{
  public:
    /** Parse argv (excluding argv[0]). Fatal on malformed flags. */
    Args(int argc, const char *const *argv);

    /** Positional arguments, in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** True iff --name was supplied (with or without a value). */
    bool has(const std::string &name) const;

    /** String value of --name, or @p fallback. */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /** Integer value of --name, or @p fallback (fatal if not a
     *  number). */
    int64_t getInt(const std::string &name, int64_t fallback) const;

    /** Double value of --name, or @p fallback. */
    double getDouble(const std::string &name, double fallback) const;

    /** Unsigned 64-bit value (for seeds). */
    uint64_t getSeed(const std::string &name, uint64_t fallback) const;

  private:
    std::vector<std::string> positional_;
    std::map<std::string, std::string> options_;
};

} // namespace dnasim

#endif // DNASIM_CLI_ARGS_HH
