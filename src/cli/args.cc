#include "cli/args.hh"

#include <cstdlib>

#include "base/logging.hh"

namespace dnasim
{

Args::Args(int argc, const char *const *argv)
{
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        if (body.empty())
            DNASIM_FATAL("bare '--' is not a valid flag");
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            options_[body.substr(0, eq)] = body.substr(eq + 1);
            continue;
        }
        // --flag value, unless the next token is another flag.
        if (i + 1 < argc &&
            std::string(argv[i + 1]).rfind("--", 0) != 0) {
            options_[body] = argv[++i];
        } else {
            options_[body] = "";
        }
    }
}

bool
Args::has(const std::string &name) const
{
    return options_.count(name) > 0;
}

std::string
Args::get(const std::string &name, const std::string &fallback) const
{
    auto it = options_.find(name);
    return it == options_.end() ? fallback : it->second;
}

int64_t
Args::getInt(const std::string &name, int64_t fallback) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        return fallback;
    char *end = nullptr;
    int64_t value = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        DNASIM_FATAL("--", name, " expects an integer, got '",
                     it->second, "'");
    return value;
}

double
Args::getDouble(const std::string &name, double fallback) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        return fallback;
    char *end = nullptr;
    double value = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        DNASIM_FATAL("--", name, " expects a number, got '",
                     it->second, "'");
    return value;
}

uint64_t
Args::getSeed(const std::string &name, uint64_t fallback) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        return fallback;
    char *end = nullptr;
    uint64_t value = std::strtoull(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        DNASIM_FATAL("--", name, " expects an unsigned integer, got '",
                     it->second, "'");
    return value;
}

} // namespace dnasim
