/**
 * @file
 * Subcommands of the dnasim command-line tool.
 */

#ifndef DNASIM_CLI_COMMANDS_HH
#define DNASIM_CLI_COMMANDS_HH

#include "cli/args.hh"

namespace dnasim
{

/** generate: synthesize a wetlab-like dataset into an evyat file. */
int cmdGenerate(const Args &args);

/** calibrate: fit an ErrorProfile from an evyat file and print it. */
int cmdCalibrate(const Args &args);

/** simulate: calibrate from one dataset and simulate another. */
int cmdSimulate(const Args &args);

/** reconstruct: run a TR algorithm over a dataset, report accuracy. */
int cmdReconstruct(const Args &args);

/** analyze: positional profiles and second-order census. */
int cmdAnalyze(const Args &args);

/** cluster: re-cluster a shuffled read pool and score purity. */
int cmdCluster(const Args &args);

/** roundtrip: store a file in simulated DNA and read it back. */
int cmdRoundtrip(const Args &args);

/** bench: ingest/diff/list over the bench trajectory ledger. */
int cmdBench(const Args &args);

/** watch: tail a dnasim.telemetry.v1 JSONL stream and render it. */
int cmdWatch(const Args &args);

/** Print top-level usage. */
void printUsage();

} // namespace dnasim

#endif // DNASIM_CLI_COMMANDS_HH
