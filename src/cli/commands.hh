/**
 * @file
 * Subcommands of the dnasim command-line tool.
 */

#ifndef DNASIM_CLI_COMMANDS_HH
#define DNASIM_CLI_COMMANDS_HH

#include <memory>
#include <string>

#include "cli/args.hh"
#include "cluster/greedy_cluster.hh"
#include "core/error_model.hh"
#include "core/error_profile.hh"
#include "data/dataset.hh"
#include "reconstruct/reconstructor.hh"

namespace dnasim
{

/** CLI factory: reconstructor for an --algo name (fatal on unknown). */
std::unique_ptr<Reconstructor>
makeReconstructor(const std::string &name);

/** CLI factory: channel model for a --model name (fatal on unknown). */
std::unique_ptr<ErrorModel> makeModel(const std::string &name,
                                      const ErrorProfile &profile);

/** Shared --cluster-index/--distance-threshold/--sketch-* parsing. */
ClusterOptions clusterOptionsFromArgs(const Args &args);

/**
 * The saved profile named by --error-profile (or valued --profile),
 * or a fresh calibration from @p dataset when neither is given.
 */
ErrorProfile errorProfileFromArgs(const Args &args,
                                  const Dataset &dataset);

/** generate: synthesize a wetlab-like dataset into an evyat file. */
int cmdGenerate(const Args &args);

/** calibrate: fit an ErrorProfile from an evyat file and print it. */
int cmdCalibrate(const Args &args);

/** simulate: calibrate from one dataset and simulate another. */
int cmdSimulate(const Args &args);

/** reconstruct: run a TR algorithm over a dataset, report accuracy. */
int cmdReconstruct(const Args &args);

/** analyze: positional profiles and second-order census. */
int cmdAnalyze(const Args &args);

/** ingest: pack a text read set into an mmap-backed pool file. */
int cmdIngest(const Args &args);

/** cluster: re-cluster a shuffled read pool and score purity. */
int cmdCluster(const Args &args);

/** explain: ground-truth failure forensics over a simulated run. */
int cmdExplain(const Args &args);

/** roundtrip: store a file in simulated DNA and read it back. */
int cmdRoundtrip(const Args &args);

/** bench: ingest/diff/list over the bench trajectory ledger. */
int cmdBench(const Args &args);

/** watch: tail a dnasim.telemetry.v1 JSONL stream and render it. */
int cmdWatch(const Args &args);

/** Print top-level usage. */
void printUsage();

} // namespace dnasim

#endif // DNASIM_CLI_COMMANDS_HH
