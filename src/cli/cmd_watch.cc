/**
 * @file
 * The `dnasim watch` subcommand: tail a dnasim.telemetry.v1 JSONL
 * stream (written by a run started with --telemetry-out) and render
 * each sample as one human-readable line — elapsed time, RSS,
 * progress of the active phases and the hottest counter rates — with
 * event lines (phase transitions, warnings) interleaved. With
 * --follow it keeps polling the file like `tail -f` and exits when
 * the producing run writes its final sample.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "cli/commands.hh"
#include "obs/json.hh"
#include "obs/report.hh"

namespace dnasim
{

namespace
{

std::string
fmtRate(double per_sec)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1);
    if (per_sec >= 1e9)
        os << per_sec / 1e9 << "G/s";
    else if (per_sec >= 1e6)
        os << per_sec / 1e6 << "M/s";
    else if (per_sec >= 1e3)
        os << per_sec / 1e3 << "k/s";
    else
        os << per_sec << "/s";
    return os.str();
}

std::string
fmtMebibytes(uint64_t bytes)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1)
       << static_cast<double>(bytes) / (1ull << 20) << " MB";
    return os.str();
}

std::string
fmtElapsed(uint64_t ns)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1)
       << static_cast<double>(ns) / 1e9 << "s";
    return os.str();
}

/** Render one "sample" document as a status line. */
std::string
renderSample(const obs::JsonValue &doc)
{
    std::ostringstream os;
    uint64_t ts_ns =
        doc.find("ts_ns") ? doc.find("ts_ns")->asUint() : 0;
    os << "[" << std::setw(7) << fmtElapsed(ts_ns) << "]";

    if (const obs::JsonValue *rss = doc.find("rss_bytes")) {
        if (rss->asUint() > 0)
            os << " rss " << fmtMebibytes(rss->asUint());
    }

    if (const obs::JsonValue *progress = doc.find("progress")) {
        for (const auto &p : progress->array()) {
            const obs::JsonValue *phase = p.find("phase");
            uint64_t done =
                p.find("done") ? p.find("done")->asUint() : 0;
            uint64_t total =
                p.find("total") ? p.find("total")->asUint() : 0;
            os << "  " << (phase ? phase->asString() : "?") << " "
               << done;
            if (total > 0) {
                os << "/" << total << " ("
                   << std::fixed << std::setprecision(1)
                   << 100.0 * static_cast<double>(done) /
                          static_cast<double>(total)
                   << "%)";
            }
        }
    }

    // The hottest counters this interval, busiest first.
    struct Hot
    {
        std::string name;
        double per_sec;
    };
    std::vector<Hot> hot;
    if (const obs::JsonValue *counters = doc.find("counters")) {
        for (const auto &c : counters->array()) {
            const obs::JsonValue *name = c.find("name");
            const obs::JsonValue *per_sec = c.find("per_sec");
            if (!name || !per_sec || per_sec->asDouble() <= 0.0)
                continue;
            hot.push_back(Hot{name->asString(),
                              per_sec->asDouble()});
        }
    }
    std::sort(hot.begin(), hot.end(), [](const Hot &a, const Hot &b) {
        return a.per_sec > b.per_sec;
    });
    const size_t shown = std::min<size_t>(hot.size(), 3);
    for (size_t i = 0; i < shown; ++i) {
        os << (i == 0 ? "  | " : ", ") << hot[i].name << " "
           << fmtRate(hot[i].per_sec);
    }

    if (doc.find("final") && doc.find("final")->asBool())
        os << "  (final)";
    return os.str();
}

/** Render one "event" document. */
std::string
renderEvent(const obs::JsonValue &doc)
{
    std::ostringstream os;
    uint64_t ts_ns =
        doc.find("ts_ns") ? doc.find("ts_ns")->asUint() : 0;
    const obs::JsonValue *event = doc.find("event");
    const obs::JsonValue *name = doc.find("name");
    os << "[" << std::setw(7) << fmtElapsed(ts_ns) << "] "
       << (event ? event->asString() : "event") << " "
       << (name ? name->asString() : "");
    if (const obs::JsonValue *fields = doc.find("fields")) {
        for (const auto &[key, value] : fields->object())
            os << " " << key << "=" << value.asString();
    }
    return os.str();
}

/** Process one complete JSONL line; returns true on a final sample. */
bool
processLine(const std::string &text, size_t line_no,
            uint64_t &parse_errors)
{
    if (text.empty())
        return false;
    obs::JsonValue doc;
    std::string error;
    if (!obs::parseJson(text, doc, &error)) {
        if (++parse_errors <= 3) {
            warn("watch: line ", line_no, ": ", error);
        }
        return false;
    }
    const obs::JsonValue *kind = doc.find("kind");
    if (kind && kind->asString() == "event") {
        std::cout << renderEvent(doc) << "\n";
        return false;
    }
    if (kind && kind->asString() == "sample") {
        std::cout << renderSample(doc) << "\n";
        return doc.find("final") && doc.find("final")->asBool();
    }
    return false;
}

} // anonymous namespace

int
cmdWatch(const Args &args)
{
    if (args.positional().size() < 2) {
        DNASIM_FATAL("usage: dnasim watch <telemetry.jsonl> "
                     "[--follow] [--interval MS]");
    }
    const std::string &path = args.positional()[1];
    const bool follow = args.has("follow");
    const auto interval_ms =
        static_cast<uint64_t>(args.getInt("interval", 500));

    std::ifstream in(path, std::ios::binary);
    if (!in)
        DNASIM_FATAL("cannot open '", path, "'");

    std::string partial;
    size_t line_no = 0;
    uint64_t parse_errors = 0;
    bool saw_final = false;
    for (;;) {
        std::string chunk;
        while (std::getline(in, chunk)) {
            if (in.eof()) {
                // Line without a trailing newline: the producer may
                // still be writing it, keep it for the next poll.
                partial += chunk;
                break;
            }
            ++line_no;
            saw_final |= processLine(partial + chunk, line_no,
                                     parse_errors);
            partial.clear();
        }
        std::cout.flush();
        if (!follow || saw_final)
            break;
        in.clear();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }
    // A final partial line only matters when the producer is done.
    if (!partial.empty() && !follow) {
        ++line_no;
        processLine(partial, line_no, parse_errors);
    }
    if (parse_errors > 3) {
        warn("watch: ", parse_errors,
             " lines failed to parse in total");
    }
    return 0;
}

} // namespace dnasim
