#include "cli/commands.hh"

#include <chrono>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <numeric>

#include "analysis/accuracy.hh"
#include "analysis/error_positions.hh"
#include "analysis/lineage.hh"
#include "analysis/second_order.hh"
#include "base/logging.hh"
#include "base/strand_pool.hh"
#include "base/table.hh"
#include "cluster/greedy_cluster.hh"
#include "cluster/shard_cluster.hh"
#include "core/channel_simulator.hh"
#include "core/dnasimulator_model.hh"
#include "core/ids_model.hh"
#include "core/profile_io.hh"
#include "core/profiler.hh"
#include "core/wetlab.hh"
#include "data/io.hh"
#include "obs/outfile.hh"
#include "pipeline/archival_pipeline.hh"
#include "pipeline/checkpoint.hh"
#include "reconstruct/bma.hh"
#include "reconstruct/divider_bma.hh"
#include "reconstruct/iterative.hh"
#include "reconstruct/majority.hh"
#include "reconstruct/twoway_iterative.hh"
#include "reconstruct/weighted_iterative.hh"

namespace dnasim
{

std::unique_ptr<Reconstructor>
makeReconstructor(const std::string &name)
{
    if (name == "bma")
        return std::make_unique<BmaLookahead>();
    if (name == "bma-oneway")
        return std::make_unique<BmaLookahead>(BmaOptions{false});
    if (name == "divbma")
        return std::make_unique<DividerBma>();
    if (name == "iterative")
        return std::make_unique<Iterative>();
    if (name == "iterative-2way")
        return std::make_unique<TwoWayIterative>();
    if (name == "iterative-weighted")
        return std::make_unique<WeightedIterative>();
    if (name == "majority")
        return std::make_unique<MajorityVote>();
    DNASIM_FATAL("unknown algorithm '", name,
                 "'; expected bma, bma-oneway, divbma, iterative, "
                 "iterative-2way, iterative-weighted, or majority");
}

std::unique_ptr<ErrorModel>
makeModel(const std::string &name, const ErrorProfile &profile)
{
    if (name == "naive")
        return std::make_unique<IdsChannelModel>(
            IdsChannelModel::naive(profile));
    if (name == "conditional")
        return std::make_unique<IdsChannelModel>(
            IdsChannelModel::conditional(profile));
    if (name == "skew")
        return std::make_unique<IdsChannelModel>(
            IdsChannelModel::skew(profile));
    if (name == "second-order")
        return std::make_unique<IdsChannelModel>(
            IdsChannelModel::secondOrder(profile));
    if (name == "dnasimulator")
        return std::make_unique<DnaSimulatorModel>(
            DnaSimulatorModel::fromProfile(profile));
    DNASIM_FATAL("unknown model '", name,
                 "'; expected naive, conditional, skew, second-order, "
                 "or dnasimulator");
}

/**
 * Clusterer settings shared by the cluster and roundtrip commands:
 * --cluster-index {greedy,sketch}, the probe bounds, and the sketch
 * tier's MinHash/LSH shape.
 */
ClusterOptions
clusterOptionsFromArgs(const Args &args)
{
    ClusterOptions options;
    std::string index_name = args.get("cluster-index", "sketch");
    auto kind = parseClusterIndex(index_name);
    if (!kind) {
        DNASIM_FATAL("unknown cluster index '", index_name,
                     "'; expected greedy or sketch");
    }
    options.index = *kind;
    options.distance_threshold = static_cast<size_t>(args.getInt(
        "distance-threshold",
        static_cast<int64_t>(options.distance_threshold)));
    options.anchor_length = static_cast<size_t>(args.getInt(
        "anchor-length", static_cast<int64_t>(options.anchor_length)));
    options.max_probes = static_cast<size_t>(args.getInt(
        "max-probes", static_cast<int64_t>(options.max_probes)));
    options.sketch.kmer_length = static_cast<size_t>(args.getInt(
        "sketch-kmer",
        static_cast<int64_t>(options.sketch.kmer_length)));
    options.sketch.num_bands = static_cast<size_t>(args.getInt(
        "sketch-bands",
        static_cast<int64_t>(options.sketch.num_bands)));
    options.sketch.rows_per_band = static_cast<size_t>(args.getInt(
        "sketch-rows",
        static_cast<int64_t>(options.sketch.rows_per_band)));
    return options;
}

ErrorProfile
errorProfileFromArgs(const Args &args, const Dataset &dataset)
{
    // Use a previously saved profile when given; otherwise calibrate
    // from the dataset itself. The canonical spelling is
    // --error-profile FILE; a valued --profile FILE still works for
    // compatibility (bare --profile is the global phase profiler).
    std::string profile_path = args.get("error-profile");
    if (profile_path.empty())
        profile_path = args.get("profile");
    if (!profile_path.empty())
        return readProfileFile(profile_path);
    ErrorProfiler profiler;
    return profiler.calibrate(dataset);
}

namespace
{

void
printProfileTable(const Histogram &profile, size_t positions,
                  const std::string &title, size_t buckets)
{
    TextTable table(title);
    table.setHeader({"positions", "errors", "share%"});
    for (const auto &b : bucketProfile(profile, positions, buckets)) {
        table.addRow({std::to_string(b.lo) + "-" +
                          std::to_string(b.hi - 1),
                      std::to_string(b.errors),
                      fmtPercent(b.share)});
    }
    table.print(std::cout);
}

/**
 * The out-of-core simulate stage: pack the references into
 * <dir>/refs.dnapool, stream simulated reads straight into
 * <dir>/reads.dnapool (origins to <dir>/origins.u32) in bounded
 * memory, and commit the stage by writing the manifest last. If a
 * manifest already exists the stage completed in an earlier process
 * and the command is a no-op — the resume contract.
 */
int
simulateToCheckpoint(const Args &args, const Dataset &real,
                     const ChannelSimulator &sim, Rng &rng,
                     size_t max_reads)
{
    if (args.has("lineage-out")) {
        DNASIM_FATAL("--lineage-out is not supported with "
                     "--checkpoint-dir (the pool path records no "
                     "lineage)");
    }
    CheckpointDir ckpt(args.get("checkpoint-dir"));
    std::string error;
    if (ckpt.hasManifest()) {
        CheckpointManifest done;
        if (!ckpt.readManifest(done, &error))
            DNASIM_FATAL("checkpoint: ", error);
        std::cout << "checkpoint " << ckpt.dir()
                  << " already at stage '" << done.stage << "' ("
                  << done.num_reads << " reads); nothing to do\n";
        return 0;
    }

    PackedStrandPoolBuilder refs_builder;
    if (!refs_builder.open(ckpt.refsPath(), &error))
        DNASIM_FATAL("checkpoint: ", error);
    for (const auto &cluster : real) {
        if (!refs_builder.append(cluster.reference))
            DNASIM_FATAL("checkpoint: non-ACGT reference strand");
    }
    if (!refs_builder.finish(&error))
        DNASIM_FATAL("checkpoint: ", error);

    PackedStrandPool refs;
    if (!refs.open(ckpt.refsPath(), &error))
        DNASIM_FATAL("checkpoint: ", error);

    PackedStrandPoolBuilder reads_builder;
    if (!reads_builder.open(ckpt.readsPath(), &error))
        DNASIM_FATAL("checkpoint: ", error);
    obs::AtomicFile origins;
    if (!origins.open(ckpt.originsPath(), &error))
        DNASIM_FATAL("checkpoint: ", error);

    CustomCoverage coverage(real.coverages());
    PoolSimulateOptions pool_options;
    pool_options.max_reads = max_reads;
    PoolSimulateResult sim_result =
        sim.simulateToPool(StrandPoolView(refs), coverage, rng,
                           reads_builder, &origins.stream(),
                           pool_options);

    if (!reads_builder.finish(&error) || !origins.commit(&error))
        DNASIM_FATAL("checkpoint: ", error);

    CheckpointManifest manifest;
    manifest.stage = "simulate";
    manifest.seed = args.getSeed("seed", 0x51a70);
    manifest.num_refs = refs.size();
    manifest.num_reads = sim_result.reads;
    manifest.config = {
        {"model", sim.model().name()},
        {"max_reads", std::to_string(max_reads)},
    };
    if (!ckpt.writeManifest(manifest, &error))
        DNASIM_FATAL("checkpoint: ", error);

    std::cout << "checkpoint " << ckpt.dir() << ": simulated "
              << sim_result.reads << " reads from " << refs.size()
              << " references (model " << sim.model().name() << ")"
              << (sim_result.truncated ? ", truncated by --max-reads"
                                       : "")
              << "\n";
    return 0;
}

/**
 * Atomically publish the byte-comparable clustering artifact: one
 * line per cluster, representative then member read indices in
 * placement order — what the determinism checks diff across
 * --threads, --simd and --shards settings.
 */
void
writeClustersOut(const std::string &path,
                 const std::vector<ReadCluster> &clusters)
{
    obs::AtomicFile out;
    std::string error;
    if (!out.open(path, &error))
        DNASIM_FATAL("cluster: ", error);
    std::ostream &os = out.stream();
    for (const auto &cluster : clusters) {
        os << cluster.representative;
        for (size_t member : cluster.members)
            os << ' ' << member;
        os << '\n';
    }
    if (!out.commit(&error))
        DNASIM_FATAL("cluster: ", error);
}

void
printClusterTable(const ClusterOptions &options, size_t num_reads,
                  size_t num_clusters, const ClusterPurity *purity,
                  double secs)
{
    TextTable table("clustering");
    table.setHeader(
        {"index", "reads", "clusters", "purity%", "reads/s"});
    table.addRow(
        {clusterIndexName(options.index), std::to_string(num_reads),
         std::to_string(num_clusters),
         purity != nullptr ? fmtPercent(purity->purity())
                           : std::string("-"),
         std::to_string(static_cast<uint64_t>(
             secs > 0.0
                 ? static_cast<double>(num_reads) / secs
                 : 0.0))});
    table.print(std::cout);
}

/**
 * The out-of-core cluster stage: shard-cluster an mmap'd pool (a
 * .dnapool positional or a checkpoint's reads.dnapool), score purity
 * when ground-truth origins exist, and — in checkpoint mode — commit
 * assignments + representatives with the manifest written last. When
 * the manifest already says "cluster" the stage completed in an
 * earlier process; the clustering is rebuilt from the snapshot, so a
 * resumed --out is byte-identical to an uninterrupted run.
 */
int
clusterPool(const Args &args, const ClusterOptions &options,
            size_t shards, size_t max_reads)
{
    if (args.has("lineage-out")) {
        DNASIM_FATAL("--lineage-out needs an evyat dataset input "
                     "(lineage attribution requires ground truth)");
    }
    std::string error;
    const bool from_checkpoint = args.has("checkpoint-dir");
    CheckpointDir ckpt(args.get("checkpoint-dir"));

    std::string pool_path;
    std::string origins_path = args.get("origins");
    bool resume = false;
    uint64_t prior_seed = 0;
    uint64_t prior_refs = 0;
    if (from_checkpoint) {
        CheckpointManifest manifest;
        if (!ckpt.readManifest(manifest, &error))
            DNASIM_FATAL("checkpoint: ", error);
        pool_path = ckpt.readsPath();
        resume = manifest.stage == "cluster";
        prior_seed = manifest.seed;
        prior_refs = manifest.num_refs;
        if (origins_path.empty() &&
            std::ifstream(ckpt.originsPath()).good())
            origins_path = ckpt.originsPath();
    } else {
        pool_path = args.positional()[1];
    }

    PackedStrandPool pool;
    if (!pool.open(pool_path, &error))
        DNASIM_FATAL("cluster: ", error);
    StrandPoolView view(pool);
    view.truncate(max_reads);
    pool.advise(MapAccess::Random);

    std::vector<ReadCluster> clusters;
    double secs = 0.0;
    size_t num_reads = view.size();
    if (resume) {
        std::vector<uint32_t> assignments;
        if (!readU32File(ckpt.assignmentsPath(), assignments,
                         &error))
            DNASIM_FATAL("checkpoint: ", error);
        PackedStrandPool reps;
        if (!reps.open(ckpt.representativesPath(), &error))
            DNASIM_FATAL("checkpoint: ", error);
        // Members grouped by assignment in read order is exactly the
        // order the clusterer appends them, so the rebuilt clustering
        // matches the committed run byte for byte.
        clusters.resize(reps.size());
        for (size_t c = 0; c < reps.size(); ++c)
            reps.unpackInto(c, clusters[c].representative);
        for (size_t r = 0; r < assignments.size(); ++r) {
            DNASIM_ASSERT(assignments[r] < clusters.size(),
                          "assignment out of range");
            clusters[assignments[r]].members.push_back(r);
        }
        num_reads = assignments.size();
        inform("checkpoint ", ckpt.dir(),
               ": cluster stage already complete; reusing snapshot");
    } else {
        auto start = std::chrono::steady_clock::now();
        clusters = clusterReadsSharded(view, options, shards);
        secs = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
        if (from_checkpoint) {
            std::vector<uint32_t> assignments(view.size(), 0);
            for (size_t c = 0; c < clusters.size(); ++c)
                for (size_t m : clusters[c].members)
                    assignments[m] = static_cast<uint32_t>(c);
            PackedStrandPoolBuilder reps;
            if (!reps.open(ckpt.representativesPath(), &error))
                DNASIM_FATAL("checkpoint: ", error);
            for (const auto &cluster : clusters) {
                if (!reps.append(cluster.representative))
                    DNASIM_FATAL(
                        "checkpoint: non-ACGT representative");
            }
            if (!reps.finish(&error))
                DNASIM_FATAL("checkpoint: ", error);
            if (!writeU32File(ckpt.assignmentsPath(), assignments,
                              &error))
                DNASIM_FATAL("checkpoint: ", error);
            CheckpointManifest manifest;
            manifest.stage = "cluster";
            manifest.seed = prior_seed;
            manifest.num_refs = prior_refs;
            manifest.num_reads = view.size();
            manifest.num_clusters = clusters.size();
            manifest.config = {
                {"index", clusterIndexName(options.index)},
                {"shards", std::to_string(shards)},
                {"distance_threshold",
                 std::to_string(options.distance_threshold)},
                {"max_reads", std::to_string(max_reads)},
            };
            if (!ckpt.writeManifest(manifest, &error))
                DNASIM_FATAL("checkpoint: ", error);
        }
    }

    const ClusterPurity *purity_ptr = nullptr;
    ClusterPurity purity;
    if (!origins_path.empty()) {
        std::vector<uint32_t> origins32;
        if (!readU32File(origins_path, origins32, &error))
            DNASIM_FATAL("cluster: ", error);
        if (origins32.size() < num_reads) {
            DNASIM_FATAL("cluster: ", origins_path, " has ",
                         origins32.size(), " origins for ", num_reads,
                         " reads");
        }
        std::vector<size_t> origins(origins32.begin(),
                                    origins32.end());
        purity = scoreClustering(clusters, origins);
        purity_ptr = &purity;
    }

    if (args.has("out"))
        writeClustersOut(args.get("out"), clusters);

    printClusterTable(options, num_reads, clusters.size(), purity_ptr,
                      secs);
    return 0;
}

} // anonymous namespace

int
cmdGenerate(const Args &args)
{
    WetlabConfig config;
    config.num_clusters =
        static_cast<size_t>(args.getInt("clusters", 1000));
    config.strand_length =
        static_cast<size_t>(args.getInt("length", 110));
    config.total_error_rate = args.getDouble("error-rate", 0.059);
    config.mean_coverage = args.getDouble("coverage", 26.97);
    std::string out = args.get("out", "wetlab.evyat");
    Rng rng(args.getSeed("seed", 0xd7a5707a));

    NanoporeDatasetGenerator generator(config);
    Dataset dataset = generator.generate(rng);
    writeEvyatFile(dataset, out);

    auto stats = dataset.stats();
    std::cout << "wrote " << out << ": " << stats.num_clusters
              << " clusters, " << stats.num_copies << " copies, mean "
              << "coverage " << fmtDouble(stats.mean_coverage)
              << ", aggregate error "
              << fmtPercent(stats.aggregate_error_rate) << "%\n";
    return 0;
}

int
cmdCalibrate(const Args &args)
{
    if (args.positional().size() < 2) {
        DNASIM_FATAL("usage: dnasim calibrate <dataset.evyat> "
                     "[--top-k K] [--out profile.txt]");
    }
    Dataset dataset = readEvyatFile(args.positional()[1]);
    ProfilerOptions options;
    options.top_second_order =
        static_cast<size_t>(args.getInt("top-k", 10));
    ErrorProfiler profiler(options);
    ErrorProfile profile = profiler.calibrate(dataset);
    std::cout << profile.str() << "\n";
    if (args.has("out")) {
        std::string out = args.get("out");
        writeProfileFile(profile, out);
        std::cout << "wrote calibrated profile to " << out << "\n";
    }
    return 0;
}

int
cmdSimulate(const Args &args)
{
    if (args.positional().size() < 2) {
        DNASIM_FATAL("usage: dnasim simulate <dataset.evyat> "
                     "[--model skew] [--out sim.evyat] "
                     "[--max-reads N] [--checkpoint-dir DIR]");
    }
    Dataset real = readEvyatFile(args.positional()[1]);
    std::string model_name = args.get("model", "second-order");
    std::string out = args.get("out", "simulated.evyat");
    const auto max_reads =
        static_cast<size_t>(args.getInt("max-reads", 0));
    Rng rng(args.getSeed("seed", 0x51a70));

    ErrorProfile profile = errorProfileFromArgs(args, real);
    auto model = makeModel(model_name, profile);
    ChannelSimulator sim(*model);

    if (args.has("checkpoint-dir"))
        return simulateToCheckpoint(args, real, sim, rng, max_reads);

    // Recording is observational: the simulated dataset is
    // byte-identical with lineage on or off.
    LineageLog lineage;
    const bool want_lineage = args.has("lineage-out");
    Dataset simulated = sim.simulateLike(
        real, rng, want_lineage ? &lineage : nullptr);
    if (max_reads > 0)
        simulated.truncateReads(max_reads);
    writeEvyatFile(simulated, out);

    if (want_lineage) {
        LineageInputs inputs;
        inputs.truth = &simulated;
        inputs.lineage = &lineage;
        LineageReport report = attributeLineage(inputs);
        const std::string lineage_out = args.get("lineage-out");
        std::string error;
        if (!writeLineageJsonl(lineage_out, inputs, report, &error))
            DNASIM_FATAL("lineage: ", error);
        inform("lineage: wrote ", lineage_out, " (",
               report.injected.total(), " injected events)");
    }

    auto stats = simulated.stats();
    std::cout << "wrote " << out << " (model " << model->name()
              << "): " << stats.num_clusters << " clusters, "
              << stats.num_copies << " copies, aggregate error "
              << fmtPercent(stats.aggregate_error_rate) << "%\n";
    return 0;
}

int
cmdReconstruct(const Args &args)
{
    const bool from_checkpoint = args.has("checkpoint-dir");
    if (args.positional().size() < 2 && !from_checkpoint) {
        DNASIM_FATAL("usage: dnasim reconstruct <dataset.evyat> "
                     "[--algo bma] [--coverage N] "
                     "[--checkpoint-dir DIR]");
    }
    std::string algo_name = args.get("algo", "bma");
    Rng rng(args.getSeed("seed", 0x4ec0));
    auto algo = makeReconstructor(algo_name);
    AccuracyResult result;

    if (from_checkpoint) {
        // Out-of-core stage 3: reconstruct each assigned cluster from
        // the mmap'd read pool against the true references, holding
        // one cluster per worker in RAM.
        CheckpointDir ckpt(args.get("checkpoint-dir"));
        CheckpointManifest manifest;
        std::string error;
        if (!ckpt.readManifest(manifest, &error))
            DNASIM_FATAL("checkpoint: ", error);
        if (manifest.stage != "cluster") {
            DNASIM_FATAL("checkpoint ", ckpt.dir(), " is at stage '",
                         manifest.stage,
                         "'; run dnasim cluster --checkpoint-dir "
                         "first");
        }
        PackedStrandPool reads;
        PackedStrandPool refs;
        if (!reads.open(ckpt.readsPath(), &error))
            DNASIM_FATAL("checkpoint: ", error);
        if (!refs.open(ckpt.refsPath(), &error)) {
            DNASIM_FATAL("checkpoint has no usable refs.dnapool "
                         "(ingested rather than simulated?); "
                         "reconstruction needs the references: ",
                         error);
        }
        std::vector<uint32_t> assignments;
        std::vector<uint32_t> origins;
        if (!readU32File(ckpt.assignmentsPath(), assignments, &error))
            DNASIM_FATAL("checkpoint: ", error);
        if (!readU32File(ckpt.originsPath(), origins, &error))
            DNASIM_FATAL("checkpoint: ", error);
        // --max-reads at the cluster stage shrinks the clustered
        // prefix; score against the same prefix of the origins.
        if (origins.size() > assignments.size())
            origins.resize(assignments.size());
        StrandPoolView reads_view(reads);
        reads_view.truncate(assignments.size());
        reads.advise(MapAccess::Random);
        result = evaluatePoolAccuracy(reads_view, assignments,
                                      origins, StrandPoolView(refs),
                                      *algo, rng);
    } else {
        Dataset dataset = readEvyatFile(args.positional()[1]);
        int64_t coverage = args.getInt("coverage", 0);
        if (coverage > 0) {
            dataset.shuffleWithinClusters(rng);
            dataset =
                dataset.fixedCoverage(static_cast<size_t>(coverage));
        }
        result = evaluateAccuracy(dataset, *algo, rng);
    }

    TextTable table("reconstruction accuracy");
    table.setHeader({"algorithm", "clusters", "per-strand%",
                     "per-char%"});
    table.addRow({algo->name(), std::to_string(result.num_clusters),
                  fmtPercent(result.perStrand()),
                  fmtPercent(result.perChar())});
    table.print(std::cout);
    return 0;
}

int
cmdAnalyze(const Args &args)
{
    if (args.positional().size() < 2)
        DNASIM_FATAL("usage: dnasim analyze <dataset.evyat>");
    Dataset dataset = readEvyatFile(args.positional()[1]);
    size_t buckets = static_cast<size_t>(args.getInt("buckets", 11));
    size_t top_k = static_cast<size_t>(args.getInt("top-k", 10));

    size_t positions = 0;
    for (const auto &c : dataset)
        positions = std::max(positions, c.reference.size());

    printProfileTable(hammingProfilePre(dataset), positions + 10,
                      "Hamming error positions (pre-reconstruction)",
                      buckets);
    printProfileTable(gestaltProfilePre(dataset), positions,
                      "gestalt-aligned error positions "
                      "(pre-reconstruction)",
                      buckets);

    auto census = secondOrderCensus(dataset);
    TextTable table("second-order error census");
    table.setHeader({"error", "count", "share%", "head%", "tail%"});
    for (size_t i = 0;
         i < std::min(top_k, census.entries.size()); ++i) {
        const auto &e = census.entries[i];
        auto b = bucketProfile(e.positions, positions, 3);
        table.addRow({e.key.str(), std::to_string(e.count),
                      fmtPercent(e.share), fmtPercent(b.front().share),
                      fmtPercent(b.back().share)});
    }
    table.print(std::cout);
    std::cout << "top-" << top_k << " errors cover "
              << fmtPercent(census.topShare(top_k))
              << "% of all errors\n";
    return 0;
}

int
cmdCluster(const Args &args)
{
    const bool from_checkpoint = args.has("checkpoint-dir");
    if (args.positional().size() < 2 && !from_checkpoint) {
        DNASIM_FATAL("usage: dnasim cluster "
                     "<dataset.evyat|pool.dnapool> "
                     "[--cluster-index sketch|greedy] "
                     "[--distance-threshold D] [--anchor-length A] "
                     "[--max-probes P] [--sketch-kmer K] "
                     "[--sketch-bands B] [--sketch-rows R] "
                     "[--shards S] [--max-reads N] "
                     "[--origins origins.u32] "
                     "[--checkpoint-dir DIR] [--out clusters.txt]");
    }
    ClusterOptions options = clusterOptionsFromArgs(args);
    const auto shards =
        static_cast<size_t>(args.getInt("shards", 1));
    const auto max_reads =
        static_cast<size_t>(args.getInt("max-reads", 0));

    // Packed pools (and checkpoint directories) take the out-of-core
    // path: mmap'd reads, sharded clustering, bounded RSS.
    const std::string input = args.positional().size() >= 2
                                  ? args.positional()[1]
                                  : std::string();
    if (from_checkpoint || input.ends_with(".dnapool"))
        return clusterPool(args, options, shards, max_reads);

    Dataset dataset = readEvyatFile(input);
    Rng rng(args.getSeed("seed", 0xc105));

    // Pool every copy with its true origin, then shuffle both
    // through one permutation: the clusterer sees a wetlab-shaped
    // unordered pool, the scorer still knows the ground truth.
    std::vector<Strand> pool;
    std::vector<ReadIdentity> ids;
    for (size_t i = 0; i < dataset.size(); ++i) {
        const auto &copies = dataset[i].copies;
        for (size_t k = 0; k < copies.size(); ++k) {
            pool.push_back(copies[k]);
            ids.push_back({static_cast<uint32_t>(i),
                           static_cast<uint32_t>(k)});
        }
    }
    std::vector<size_t> perm(pool.size());
    std::iota(perm.begin(), perm.end(), size_t{0});
    rng.shuffle(perm);
    std::vector<Strand> shuffled(pool.size());
    std::vector<ReadIdentity> shuffled_ids(pool.size());
    std::vector<size_t> shuffled_origins(pool.size());
    for (size_t i = 0; i < perm.size(); ++i) {
        shuffled[i] = std::move(pool[perm[i]]);
        shuffled_ids[i] = ids[perm[i]];
        shuffled_origins[i] = shuffled_ids[i].origin_cluster;
    }
    if (max_reads > 0 && max_reads < shuffled.size()) {
        shuffled.resize(max_reads);
        shuffled_ids.resize(max_reads);
        shuffled_origins.resize(max_reads);
    }

    // Assignment provenance is captured only on demand; placements
    // are identical either way. With --shards 1 (the default) the
    // sharded clusterer is a pass-through of clusterReads.
    const bool want_lineage = args.has("lineage-out");
    std::vector<ReadAssignment> assignments;
    auto start = std::chrono::steady_clock::now();
    std::vector<ReadCluster> clusters = clusterReadsSharded(
        StrandPoolView(shuffled), options, shards,
        want_lineage ? &assignments : nullptr);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    ClusterPurity purity = scoreClustering(clusters, shuffled_origins);

    if (want_lineage) {
        LineageInputs inputs;
        inputs.truth = &dataset;
        inputs.clusters = &clusters;
        inputs.pool = &shuffled;
        inputs.identity = &shuffled_ids;
        inputs.assignments = &assignments;
        LineageReport report = attributeLineage(inputs);
        const std::string lineage_out = args.get("lineage-out");
        std::string error;
        if (!writeLineageJsonl(lineage_out, inputs, report, &error))
            DNASIM_FATAL("lineage: ", error);
        inform("lineage: wrote ", lineage_out, " (",
               report.misclustered.size(), " misclustered reads)");
    }

    if (args.has("out"))
        writeClustersOut(args.get("out"), clusters);

    printClusterTable(options, purity.num_reads, purity.num_clusters,
                      &purity, secs);
    return 0;
}

int
cmdRoundtrip(const Args &args)
{
    if (args.positional().size() < 2) {
        DNASIM_FATAL("usage: dnasim roundtrip <file> "
                     "[--coverage N] [--error-rate p] "
                     "[--algo iterative] [--max-reads N]");
    }
    const std::string &path = args.positional()[1];
    std::ifstream in(path, std::ios::binary);
    if (!in)
        DNASIM_FATAL("cannot open '", path, "'");
    Bytes file((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());

    auto coverage_n =
        static_cast<size_t>(args.getInt("coverage", 6));
    double error_rate = args.getDouble("error-rate", 0.04);
    std::string algo_name = args.get("algo", "iterative");
    Rng rng(args.getSeed("seed", 0x3071));

    PipelineConfig pipeline_config;
    pipeline_config.max_reads =
        static_cast<size_t>(args.getInt("max-reads", 0));
    pipeline_config.recluster = args.has("recluster");
    pipeline_config.cluster = clusterOptionsFromArgs(args);
    ArchivalPipeline pipeline(pipeline_config);
    StoredObject object = pipeline.store(file);
    std::cout << "encoded " << file.size() << " bytes into "
              << object.strands.size() << " strands of length "
              << pipeline.strandLength() << "\n";

    ErrorProfile channel_profile =
        NanoporeDatasetGenerator::groundTruthProfile(
            pipeline.strandLength(), error_rate);
    IdsChannelModel channel =
        IdsChannelModel::full(channel_profile, "nanopore-like");
    FixedCoverage coverage(coverage_n);
    auto algo = makeReconstructor(algo_name);

    const bool want_lineage = args.has("lineage-out");
    LineageLog lineage;
    Dataset simulated;
    RetrievedObject result = pipeline.roundTrip(
        file, channel, coverage, *algo, rng,
        want_lineage ? &lineage : nullptr,
        want_lineage ? &simulated : nullptr);
    if (want_lineage) {
        LineageInputs inputs;
        inputs.truth = &simulated;
        inputs.lineage = &lineage;
        LineageReport report = attributeLineage(inputs);
        const std::string lineage_out = args.get("lineage-out");
        std::string error;
        if (!writeLineageJsonl(lineage_out, inputs, report, &error))
            DNASIM_FATAL("lineage: ", error);
        inform("lineage: wrote ", lineage_out, " (",
               report.injected.total(), " injected events)");
    }
    std::cout << "retrieval " << (result.success ? "OK" : "FAILED")
              << ": erasures=" << result.stats.erasure_clusters
              << " crc-rejects="
              << result.stats.crc_failures +
                     result.stats.undecodable_strands
              << " frames-recovered="
              << result.stats.frames_recovered
              << " payload-intact="
              << (result.data == file ? "yes" : "NO") << "\n";
    return result.success && result.data == file ? 0 : 1;
}

void
printUsage()
{
    std::cout <<
        "dnasim — DNA storage noisy-channel simulator\n"
        "\n"
        "usage: dnasim <command> [args]\n"
        "\n"
        "commands:\n"
        "  generate     generate a synthetic wetlab dataset\n"
        "               [--clusters N] [--length L] [--error-rate p]\n"
        "               [--coverage c] [--seed s] [--out file]\n"
        "  calibrate    fit an error profile from a dataset\n"
        "               <dataset.evyat> [--top-k K]\n"
        "  simulate     calibrate from a dataset and re-simulate it\n"
        "               <dataset.evyat> [--model naive|conditional|\n"
        "               skew|second-order|dnasimulator] [--out file]\n"
        "               [--error-profile profile.txt]\n"
        "               [--max-reads N] [--checkpoint-dir DIR]\n"
        "               [--lineage-out lineage.jsonl]\n"
        "  ingest       pack a text read set into an mmap-backed\n"
        "               .dnapool file in bounded memory\n"
        "               <reads.{txt,fasta,evyat}>\n"
        "               [--format auto|lines|fasta|evyat]\n"
        "               [--out pool.dnapool | --checkpoint-dir DIR]\n"
        "               [--origins origins.u32] [--max-reads N]\n"
        "  explain      simulate with ground-truth lineage, "
        "reconstruct,\n"
        "               and attribute every residual error to its\n"
        "               cause <dataset.evyat> [--model M] [--algo A]\n"
        "               [--coverage N] [--recluster] [--json]\n"
        "               [--buckets B] [--lineage-out lineage.jsonl]\n"
        "  reconstruct  run trace reconstruction and report accuracy\n"
        "               <dataset.evyat> [--algo bma|bma-oneway|divbma|\n"
        "               iterative|iterative-2way|iterative-weighted|\n"
        "               majority] [--coverage N]\n"
        "               [--checkpoint-dir DIR]\n"
        "  analyze      positional error profiles and second-order\n"
        "               census <dataset.evyat> [--buckets B]\n"
        "  cluster      re-cluster a read pool and score purity\n"
        "               <dataset.evyat|pool.dnapool>\n"
        "               [--cluster-index sketch|greedy]\n"
        "               [--distance-threshold D] [--anchor-length A]\n"
        "               [--max-probes P] [--sketch-kmer K]\n"
        "               [--sketch-bands B] [--sketch-rows R]\n"
        "               [--shards S] [--max-reads N]\n"
        "               [--origins origins.u32]\n"
        "               [--checkpoint-dir DIR] [--out clusters.txt]\n"
        "               [--lineage-out lineage.jsonl]\n"
        "  roundtrip    store a file in simulated DNA and read it\n"
        "               back <file> [--coverage N] [--error-rate p]\n"
        "               [--algo iterative] [--recluster]\n"
        "               [--max-reads N]\n"
        "               [--cluster-index sketch|greedy]\n"
        "               [--lineage-out lineage.jsonl]\n"
        "  bench        bench trajectory ledger and perf diffing\n"
        "               ingest <input>... [--ledger FILE]\n"
        "               diff <baseline> <candidate> [--threshold p]\n"
        "               [--sigma k] [--json] (exit 2 on regression)\n"
        "               list [--ledger FILE]\n"
        "  watch        tail a telemetry JSONL stream and render\n"
        "               rates <telemetry.jsonl> [--follow]\n"
        "               [--interval MS]\n"
        "\n"
        "global flags (any command):\n"
        "  --stats-out FILE  write a JSON stats snapshot on exit\n"
        "  --stats           dump the stats snapshot to stderr\n"
        "  --trace-out FILE  record a Chrome/Perfetto trace JSON\n"
        "  --profile         print the hierarchical phase profile\n"
        "                    (inclusive/exclusive tree + RSS peaks)\n"
        "  --metrics-out FILE    stream an OpenMetrics snapshot to\n"
        "                    FILE (atomically rewritten each tick;\n"
        "                    node_exporter textfile compatible)\n"
        "  --telemetry-out FILE  append dnasim.telemetry.v1 JSONL\n"
        "                    samples and events to FILE (see watch)\n"
        "  --telemetry-interval MS  sampler period (default 500)\n"
        "  --progress {auto,always,never}  live stderr status line\n"
        "                    (default auto: only when stderr is a\n"
        "                    TTY and telemetry/progress is active)\n"
        "  --threads N       worker threads for parallel loops\n"
        "                    (default: DNASIM_THREADS env var or\n"
        "                    hardware concurrency; output is\n"
        "                    identical for every N)\n"
        "  --simd {auto,scalar,avx2,avx512}  batch alignment\n"
        "                    kernel tier (default: DNASIM_SIMD env\n"
        "                    var or the widest tier the CPU\n"
        "                    supports; output is identical for\n"
        "                    every tier)\n";
}

} // namespace dnasim
