#include "cli/commands.hh"

#include <chrono>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <numeric>

#include "analysis/accuracy.hh"
#include "analysis/error_positions.hh"
#include "analysis/lineage.hh"
#include "analysis/second_order.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "cluster/greedy_cluster.hh"
#include "core/channel_simulator.hh"
#include "core/dnasimulator_model.hh"
#include "core/ids_model.hh"
#include "core/profile_io.hh"
#include "core/profiler.hh"
#include "core/wetlab.hh"
#include "data/io.hh"
#include "pipeline/archival_pipeline.hh"
#include "reconstruct/bma.hh"
#include "reconstruct/divider_bma.hh"
#include "reconstruct/iterative.hh"
#include "reconstruct/majority.hh"
#include "reconstruct/twoway_iterative.hh"
#include "reconstruct/weighted_iterative.hh"

namespace dnasim
{

std::unique_ptr<Reconstructor>
makeReconstructor(const std::string &name)
{
    if (name == "bma")
        return std::make_unique<BmaLookahead>();
    if (name == "bma-oneway")
        return std::make_unique<BmaLookahead>(BmaOptions{false});
    if (name == "divbma")
        return std::make_unique<DividerBma>();
    if (name == "iterative")
        return std::make_unique<Iterative>();
    if (name == "iterative-2way")
        return std::make_unique<TwoWayIterative>();
    if (name == "iterative-weighted")
        return std::make_unique<WeightedIterative>();
    if (name == "majority")
        return std::make_unique<MajorityVote>();
    DNASIM_FATAL("unknown algorithm '", name,
                 "'; expected bma, bma-oneway, divbma, iterative, "
                 "iterative-2way, iterative-weighted, or majority");
}

std::unique_ptr<ErrorModel>
makeModel(const std::string &name, const ErrorProfile &profile)
{
    if (name == "naive")
        return std::make_unique<IdsChannelModel>(
            IdsChannelModel::naive(profile));
    if (name == "conditional")
        return std::make_unique<IdsChannelModel>(
            IdsChannelModel::conditional(profile));
    if (name == "skew")
        return std::make_unique<IdsChannelModel>(
            IdsChannelModel::skew(profile));
    if (name == "second-order")
        return std::make_unique<IdsChannelModel>(
            IdsChannelModel::secondOrder(profile));
    if (name == "dnasimulator")
        return std::make_unique<DnaSimulatorModel>(
            DnaSimulatorModel::fromProfile(profile));
    DNASIM_FATAL("unknown model '", name,
                 "'; expected naive, conditional, skew, second-order, "
                 "or dnasimulator");
}

/**
 * Clusterer settings shared by the cluster and roundtrip commands:
 * --cluster-index {greedy,sketch}, the probe bounds, and the sketch
 * tier's MinHash/LSH shape.
 */
ClusterOptions
clusterOptionsFromArgs(const Args &args)
{
    ClusterOptions options;
    std::string index_name = args.get("cluster-index", "sketch");
    auto kind = parseClusterIndex(index_name);
    if (!kind) {
        DNASIM_FATAL("unknown cluster index '", index_name,
                     "'; expected greedy or sketch");
    }
    options.index = *kind;
    options.distance_threshold = static_cast<size_t>(args.getInt(
        "distance-threshold",
        static_cast<int64_t>(options.distance_threshold)));
    options.anchor_length = static_cast<size_t>(args.getInt(
        "anchor-length", static_cast<int64_t>(options.anchor_length)));
    options.max_probes = static_cast<size_t>(args.getInt(
        "max-probes", static_cast<int64_t>(options.max_probes)));
    options.sketch.kmer_length = static_cast<size_t>(args.getInt(
        "sketch-kmer",
        static_cast<int64_t>(options.sketch.kmer_length)));
    options.sketch.num_bands = static_cast<size_t>(args.getInt(
        "sketch-bands",
        static_cast<int64_t>(options.sketch.num_bands)));
    options.sketch.rows_per_band = static_cast<size_t>(args.getInt(
        "sketch-rows",
        static_cast<int64_t>(options.sketch.rows_per_band)));
    return options;
}

ErrorProfile
errorProfileFromArgs(const Args &args, const Dataset &dataset)
{
    // Use a previously saved profile when given; otherwise calibrate
    // from the dataset itself. The canonical spelling is
    // --error-profile FILE; a valued --profile FILE still works for
    // compatibility (bare --profile is the global phase profiler).
    std::string profile_path = args.get("error-profile");
    if (profile_path.empty())
        profile_path = args.get("profile");
    if (!profile_path.empty())
        return readProfileFile(profile_path);
    ErrorProfiler profiler;
    return profiler.calibrate(dataset);
}

namespace
{

void
printProfileTable(const Histogram &profile, size_t positions,
                  const std::string &title, size_t buckets)
{
    TextTable table(title);
    table.setHeader({"positions", "errors", "share%"});
    for (const auto &b : bucketProfile(profile, positions, buckets)) {
        table.addRow({std::to_string(b.lo) + "-" +
                          std::to_string(b.hi - 1),
                      std::to_string(b.errors),
                      fmtPercent(b.share)});
    }
    table.print(std::cout);
}

} // anonymous namespace

int
cmdGenerate(const Args &args)
{
    WetlabConfig config;
    config.num_clusters =
        static_cast<size_t>(args.getInt("clusters", 1000));
    config.strand_length =
        static_cast<size_t>(args.getInt("length", 110));
    config.total_error_rate = args.getDouble("error-rate", 0.059);
    config.mean_coverage = args.getDouble("coverage", 26.97);
    std::string out = args.get("out", "wetlab.evyat");
    Rng rng(args.getSeed("seed", 0xd7a5707a));

    NanoporeDatasetGenerator generator(config);
    Dataset dataset = generator.generate(rng);
    writeEvyatFile(dataset, out);

    auto stats = dataset.stats();
    std::cout << "wrote " << out << ": " << stats.num_clusters
              << " clusters, " << stats.num_copies << " copies, mean "
              << "coverage " << fmtDouble(stats.mean_coverage)
              << ", aggregate error "
              << fmtPercent(stats.aggregate_error_rate) << "%\n";
    return 0;
}

int
cmdCalibrate(const Args &args)
{
    if (args.positional().size() < 2) {
        DNASIM_FATAL("usage: dnasim calibrate <dataset.evyat> "
                     "[--top-k K] [--out profile.txt]");
    }
    Dataset dataset = readEvyatFile(args.positional()[1]);
    ProfilerOptions options;
    options.top_second_order =
        static_cast<size_t>(args.getInt("top-k", 10));
    ErrorProfiler profiler(options);
    ErrorProfile profile = profiler.calibrate(dataset);
    std::cout << profile.str() << "\n";
    if (args.has("out")) {
        std::string out = args.get("out");
        writeProfileFile(profile, out);
        std::cout << "wrote calibrated profile to " << out << "\n";
    }
    return 0;
}

int
cmdSimulate(const Args &args)
{
    if (args.positional().size() < 2) {
        DNASIM_FATAL("usage: dnasim simulate <dataset.evyat> "
                     "[--model skew] [--out sim.evyat]");
    }
    Dataset real = readEvyatFile(args.positional()[1]);
    std::string model_name = args.get("model", "second-order");
    std::string out = args.get("out", "simulated.evyat");
    Rng rng(args.getSeed("seed", 0x51a70));

    ErrorProfile profile = errorProfileFromArgs(args, real);
    auto model = makeModel(model_name, profile);
    ChannelSimulator sim(*model);
    // Recording is observational: the simulated dataset is
    // byte-identical with lineage on or off.
    LineageLog lineage;
    const bool want_lineage = args.has("lineage-out");
    Dataset simulated = sim.simulateLike(
        real, rng, want_lineage ? &lineage : nullptr);
    writeEvyatFile(simulated, out);

    if (want_lineage) {
        LineageInputs inputs;
        inputs.truth = &simulated;
        inputs.lineage = &lineage;
        LineageReport report = attributeLineage(inputs);
        const std::string lineage_out = args.get("lineage-out");
        std::string error;
        if (!writeLineageJsonl(lineage_out, inputs, report, &error))
            DNASIM_FATAL("lineage: ", error);
        inform("lineage: wrote ", lineage_out, " (",
               report.injected.total(), " injected events)");
    }

    auto stats = simulated.stats();
    std::cout << "wrote " << out << " (model " << model->name()
              << "): " << stats.num_clusters << " clusters, "
              << stats.num_copies << " copies, aggregate error "
              << fmtPercent(stats.aggregate_error_rate) << "%\n";
    return 0;
}

int
cmdReconstruct(const Args &args)
{
    if (args.positional().size() < 2) {
        DNASIM_FATAL("usage: dnasim reconstruct <dataset.evyat> "
                     "[--algo bma] [--coverage N]");
    }
    Dataset dataset = readEvyatFile(args.positional()[1]);
    std::string algo_name = args.get("algo", "bma");
    int64_t coverage = args.getInt("coverage", 0);
    Rng rng(args.getSeed("seed", 0x4ec0));

    if (coverage > 0) {
        dataset.shuffleWithinClusters(rng);
        dataset = dataset.fixedCoverage(static_cast<size_t>(coverage));
    }
    auto algo = makeReconstructor(algo_name);
    AccuracyResult result = evaluateAccuracy(dataset, *algo, rng);

    TextTable table("reconstruction accuracy");
    table.setHeader({"algorithm", "clusters", "per-strand%",
                     "per-char%"});
    table.addRow({algo->name(), std::to_string(result.num_clusters),
                  fmtPercent(result.perStrand()),
                  fmtPercent(result.perChar())});
    table.print(std::cout);
    return 0;
}

int
cmdAnalyze(const Args &args)
{
    if (args.positional().size() < 2)
        DNASIM_FATAL("usage: dnasim analyze <dataset.evyat>");
    Dataset dataset = readEvyatFile(args.positional()[1]);
    size_t buckets = static_cast<size_t>(args.getInt("buckets", 11));
    size_t top_k = static_cast<size_t>(args.getInt("top-k", 10));

    size_t positions = 0;
    for (const auto &c : dataset)
        positions = std::max(positions, c.reference.size());

    printProfileTable(hammingProfilePre(dataset), positions + 10,
                      "Hamming error positions (pre-reconstruction)",
                      buckets);
    printProfileTable(gestaltProfilePre(dataset), positions,
                      "gestalt-aligned error positions "
                      "(pre-reconstruction)",
                      buckets);

    auto census = secondOrderCensus(dataset);
    TextTable table("second-order error census");
    table.setHeader({"error", "count", "share%", "head%", "tail%"});
    for (size_t i = 0;
         i < std::min(top_k, census.entries.size()); ++i) {
        const auto &e = census.entries[i];
        auto b = bucketProfile(e.positions, positions, 3);
        table.addRow({e.key.str(), std::to_string(e.count),
                      fmtPercent(e.share), fmtPercent(b.front().share),
                      fmtPercent(b.back().share)});
    }
    table.print(std::cout);
    std::cout << "top-" << top_k << " errors cover "
              << fmtPercent(census.topShare(top_k))
              << "% of all errors\n";
    return 0;
}

int
cmdCluster(const Args &args)
{
    if (args.positional().size() < 2) {
        DNASIM_FATAL("usage: dnasim cluster <dataset.evyat> "
                     "[--cluster-index sketch|greedy] "
                     "[--distance-threshold D] [--anchor-length A] "
                     "[--max-probes P] [--sketch-kmer K] "
                     "[--sketch-bands B] [--sketch-rows R] "
                     "[--out clusters.txt]");
    }
    Dataset dataset = readEvyatFile(args.positional()[1]);
    ClusterOptions options = clusterOptionsFromArgs(args);
    Rng rng(args.getSeed("seed", 0xc105));

    // Pool every copy with its true origin, then shuffle both
    // through one permutation: the clusterer sees a wetlab-shaped
    // unordered pool, the scorer still knows the ground truth.
    std::vector<Strand> pool;
    std::vector<ReadIdentity> ids;
    for (size_t i = 0; i < dataset.size(); ++i) {
        const auto &copies = dataset[i].copies;
        for (size_t k = 0; k < copies.size(); ++k) {
            pool.push_back(copies[k]);
            ids.push_back({static_cast<uint32_t>(i),
                           static_cast<uint32_t>(k)});
        }
    }
    std::vector<size_t> perm(pool.size());
    std::iota(perm.begin(), perm.end(), size_t{0});
    rng.shuffle(perm);
    std::vector<Strand> shuffled(pool.size());
    std::vector<ReadIdentity> shuffled_ids(pool.size());
    std::vector<size_t> shuffled_origins(pool.size());
    for (size_t i = 0; i < perm.size(); ++i) {
        shuffled[i] = std::move(pool[perm[i]]);
        shuffled_ids[i] = ids[perm[i]];
        shuffled_origins[i] = shuffled_ids[i].origin_cluster;
    }

    // Assignment provenance is captured only on demand; placements
    // are identical either way.
    const bool want_lineage = args.has("lineage-out");
    std::vector<ReadAssignment> assignments;
    auto start = std::chrono::steady_clock::now();
    std::vector<ReadCluster> clusters = clusterReads(
        shuffled, options, want_lineage ? &assignments : nullptr);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    ClusterPurity purity = scoreClustering(clusters, shuffled_origins);

    if (want_lineage) {
        LineageInputs inputs;
        inputs.truth = &dataset;
        inputs.clusters = &clusters;
        inputs.pool = &shuffled;
        inputs.identity = &shuffled_ids;
        inputs.assignments = &assignments;
        LineageReport report = attributeLineage(inputs);
        const std::string lineage_out = args.get("lineage-out");
        std::string error;
        if (!writeLineageJsonl(lineage_out, inputs, report, &error))
            DNASIM_FATAL("lineage: ", error);
        inform("lineage: wrote ", lineage_out, " (",
               report.misclustered.size(), " misclustered reads)");
    }

    // The stdout summary carries a wall-clock throughput column; the
    // clustering itself — representative plus member read indices in
    // placement order — goes to --out, which is the byte-comparable
    // artifact the determinism checks diff across --threads and
    // --simd settings.
    if (args.has("out")) {
        std::string out = args.get("out");
        std::ofstream os(out, std::ios::binary);
        if (!os)
            DNASIM_FATAL("cannot write '", out, "'");
        for (const auto &cluster : clusters) {
            os << cluster.representative;
            for (size_t member : cluster.members)
                os << ' ' << member;
            os << '\n';
        }
    }

    TextTable table("clustering");
    table.setHeader({"index", "reads", "clusters", "purity%",
                     "reads/s"});
    table.addRow({clusterIndexName(options.index),
                  std::to_string(purity.num_reads),
                  std::to_string(purity.num_clusters),
                  fmtPercent(purity.purity()),
                  std::to_string(static_cast<uint64_t>(
                      secs > 0.0 ? static_cast<double>(purity.num_reads)
                                       / secs
                                 : 0.0))});
    table.print(std::cout);
    return 0;
}

int
cmdRoundtrip(const Args &args)
{
    if (args.positional().size() < 2) {
        DNASIM_FATAL("usage: dnasim roundtrip <file> "
                     "[--coverage N] [--error-rate p] "
                     "[--algo iterative]");
    }
    const std::string &path = args.positional()[1];
    std::ifstream in(path, std::ios::binary);
    if (!in)
        DNASIM_FATAL("cannot open '", path, "'");
    Bytes file((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());

    auto coverage_n =
        static_cast<size_t>(args.getInt("coverage", 6));
    double error_rate = args.getDouble("error-rate", 0.04);
    std::string algo_name = args.get("algo", "iterative");
    Rng rng(args.getSeed("seed", 0x3071));

    PipelineConfig pipeline_config;
    pipeline_config.recluster = args.has("recluster");
    pipeline_config.cluster = clusterOptionsFromArgs(args);
    ArchivalPipeline pipeline(pipeline_config);
    StoredObject object = pipeline.store(file);
    std::cout << "encoded " << file.size() << " bytes into "
              << object.strands.size() << " strands of length "
              << pipeline.strandLength() << "\n";

    ErrorProfile channel_profile =
        NanoporeDatasetGenerator::groundTruthProfile(
            pipeline.strandLength(), error_rate);
    IdsChannelModel channel =
        IdsChannelModel::full(channel_profile, "nanopore-like");
    FixedCoverage coverage(coverage_n);
    auto algo = makeReconstructor(algo_name);

    const bool want_lineage = args.has("lineage-out");
    LineageLog lineage;
    Dataset simulated;
    RetrievedObject result = pipeline.roundTrip(
        file, channel, coverage, *algo, rng,
        want_lineage ? &lineage : nullptr,
        want_lineage ? &simulated : nullptr);
    if (want_lineage) {
        LineageInputs inputs;
        inputs.truth = &simulated;
        inputs.lineage = &lineage;
        LineageReport report = attributeLineage(inputs);
        const std::string lineage_out = args.get("lineage-out");
        std::string error;
        if (!writeLineageJsonl(lineage_out, inputs, report, &error))
            DNASIM_FATAL("lineage: ", error);
        inform("lineage: wrote ", lineage_out, " (",
               report.injected.total(), " injected events)");
    }
    std::cout << "retrieval " << (result.success ? "OK" : "FAILED")
              << ": erasures=" << result.stats.erasure_clusters
              << " crc-rejects="
              << result.stats.crc_failures +
                     result.stats.undecodable_strands
              << " frames-recovered="
              << result.stats.frames_recovered
              << " payload-intact="
              << (result.data == file ? "yes" : "NO") << "\n";
    return result.success && result.data == file ? 0 : 1;
}

void
printUsage()
{
    std::cout <<
        "dnasim — DNA storage noisy-channel simulator\n"
        "\n"
        "usage: dnasim <command> [args]\n"
        "\n"
        "commands:\n"
        "  generate     generate a synthetic wetlab dataset\n"
        "               [--clusters N] [--length L] [--error-rate p]\n"
        "               [--coverage c] [--seed s] [--out file]\n"
        "  calibrate    fit an error profile from a dataset\n"
        "               <dataset.evyat> [--top-k K]\n"
        "  simulate     calibrate from a dataset and re-simulate it\n"
        "               <dataset.evyat> [--model naive|conditional|\n"
        "               skew|second-order|dnasimulator] [--out file]\n"
        "               [--error-profile profile.txt]\n"
        "               [--lineage-out lineage.jsonl]\n"
        "  explain      simulate with ground-truth lineage, "
        "reconstruct,\n"
        "               and attribute every residual error to its\n"
        "               cause <dataset.evyat> [--model M] [--algo A]\n"
        "               [--coverage N] [--recluster] [--json]\n"
        "               [--buckets B] [--lineage-out lineage.jsonl]\n"
        "  reconstruct  run trace reconstruction and report accuracy\n"
        "               <dataset.evyat> [--algo bma|bma-oneway|divbma|\n"
        "               iterative|iterative-2way|iterative-weighted|\n"
        "               majority] [--coverage N]\n"
        "  analyze      positional error profiles and second-order\n"
        "               census <dataset.evyat> [--buckets B]\n"
        "  cluster      re-cluster a shuffled read pool and score\n"
        "               purity <dataset.evyat>\n"
        "               [--cluster-index sketch|greedy]\n"
        "               [--distance-threshold D] [--anchor-length A]\n"
        "               [--max-probes P] [--sketch-kmer K]\n"
        "               [--sketch-bands B] [--sketch-rows R]\n"
        "               [--out clusters.txt]\n"
        "               [--lineage-out lineage.jsonl]\n"
        "  roundtrip    store a file in simulated DNA and read it\n"
        "               back <file> [--coverage N] [--error-rate p]\n"
        "               [--algo iterative] [--recluster]\n"
        "               [--cluster-index sketch|greedy]\n"
        "               [--lineage-out lineage.jsonl]\n"
        "  bench        bench trajectory ledger and perf diffing\n"
        "               ingest <input>... [--ledger FILE]\n"
        "               diff <baseline> <candidate> [--threshold p]\n"
        "               [--sigma k] [--json] (exit 2 on regression)\n"
        "               list [--ledger FILE]\n"
        "  watch        tail a telemetry JSONL stream and render\n"
        "               rates <telemetry.jsonl> [--follow]\n"
        "               [--interval MS]\n"
        "\n"
        "global flags (any command):\n"
        "  --stats-out FILE  write a JSON stats snapshot on exit\n"
        "  --stats           dump the stats snapshot to stderr\n"
        "  --trace-out FILE  record a Chrome/Perfetto trace JSON\n"
        "  --profile         print the hierarchical phase profile\n"
        "                    (inclusive/exclusive tree + RSS peaks)\n"
        "  --metrics-out FILE    stream an OpenMetrics snapshot to\n"
        "                    FILE (atomically rewritten each tick;\n"
        "                    node_exporter textfile compatible)\n"
        "  --telemetry-out FILE  append dnasim.telemetry.v1 JSONL\n"
        "                    samples and events to FILE (see watch)\n"
        "  --telemetry-interval MS  sampler period (default 500)\n"
        "  --progress {auto,always,never}  live stderr status line\n"
        "                    (default auto: only when stderr is a\n"
        "                    TTY and telemetry/progress is active)\n"
        "  --threads N       worker threads for parallel loops\n"
        "                    (default: DNASIM_THREADS env var or\n"
        "                    hardware concurrency; output is\n"
        "                    identical for every N)\n"
        "  --simd {auto,scalar,avx2,avx512}  batch alignment\n"
        "                    kernel tier (default: DNASIM_SIMD env\n"
        "                    var or the widest tier the CPU\n"
        "                    supports; output is identical for\n"
        "                    every tier)\n";
}

} // namespace dnasim
