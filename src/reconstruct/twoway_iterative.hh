/**
 * @file
 * Two-way Iterative reconstruction — the improvement the paper
 * proposes in section 4.3.
 *
 * The one-way Iterative algorithm anchors its consensus at the
 * strand start, so errors propagate toward the end (Fig. 3.4a). The
 * two-way variant runs the Iterative algorithm forward on the
 * cluster and again on the reversed copies, then keeps the first
 * half of each execution — exactly the trick BMA uses — so both
 * strand ends are reconstructed from their nearest anchor.
 */

#ifndef DNASIM_RECONSTRUCT_TWOWAY_ITERATIVE_HH
#define DNASIM_RECONSTRUCT_TWOWAY_ITERATIVE_HH

#include "reconstruct/iterative.hh"
#include "reconstruct/reconstructor.hh"

namespace dnasim
{

/** Forward + backward Iterative with half-and-half stitching. */
class TwoWayIterative : public Reconstructor
{
  public:
    explicit TwoWayIterative(IterativeOptions options = {});

    Strand reconstruct(const std::vector<Strand> &copies,
                       size_t design_len, Rng &rng) const override;
    std::string name() const override { return "Iterative-2way"; }

  private:
    Iterative inner_;
};

} // namespace dnasim

#endif // DNASIM_RECONSTRUCT_TWOWAY_ITERATIVE_HH
