#include "reconstruct/weighted_iterative.hh"

#include <cmath>

#include "align/gestalt.hh"
#include "base/logging.hh"
#include "reconstruct/bma.hh"
#include "reconstruct/consensus.hh"

namespace dnasim
{

WeightedIterative::WeightedIterative(WeightedIterativeOptions options)
    : options_(options)
{
    DNASIM_ASSERT(options_.max_rounds > 0, "zero rounds");
    DNASIM_ASSERT(options_.weight_power >= 0.0,
                  "negative weight power");
}

Strand
WeightedIterative::reconstruct(const std::vector<Strand> &copies,
                               size_t design_len, Rng &rng) const
{
    if (copies.empty())
        return Strand();

    Strand estimate =
        BmaLookahead::forwardPass(copies, design_len, rng);
    std::vector<double> weights(copies.size(), 1.0);

    for (size_t round = 0; round < options_.max_rounds; ++round) {
        // Copies that align well with the current estimate get more
        // say; badly corrupted copies (bursts, heavy drift) lose
        // influence instead of dragging the consensus off register.
        for (size_t k = 0; k < copies.size(); ++k) {
            double score = gestaltScore(estimate, copies[k]);
            weights[k] = std::pow(score, options_.weight_power);
        }
        Strand next = alignedConsensus(estimate, copies, rng, weights);
        if (next == estimate)
            break;
        estimate = std::move(next);
    }

    return enforceDesignLength(std::move(estimate), copies,
                               design_len, rng);
}

} // namespace dnasim
