/**
 * @file
 * The naive position-wise majority reconstructor.
 *
 * No alignment at all: position i of the estimate is the plurality
 * of position i over all copies. A useful floor baseline — it
 * degrades quickly once indels shift the copies out of register.
 */

#ifndef DNASIM_RECONSTRUCT_MAJORITY_HH
#define DNASIM_RECONSTRUCT_MAJORITY_HH

#include "reconstruct/reconstructor.hh"

namespace dnasim
{

/** Position-wise plurality with no alignment. */
class MajorityVote : public Reconstructor
{
  public:
    MajorityVote() = default;

    Strand reconstruct(const std::vector<Strand> &copies,
                       size_t design_len, Rng &rng) const override;
    std::string name() const override { return "Majority"; }
};

} // namespace dnasim

#endif // DNASIM_RECONSTRUCT_MAJORITY_HH
