#include "reconstruct/majority.hh"

#include "reconstruct/consensus.hh"

namespace dnasim
{

Strand
MajorityVote::reconstruct(const std::vector<Strand> &copies,
                          size_t design_len, Rng &rng) const
{
    if (copies.empty())
        return Strand();
    return positionalPlurality(copies, design_len, rng);
}

} // namespace dnasim
