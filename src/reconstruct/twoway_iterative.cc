#include "reconstruct/twoway_iterative.hh"

#include <algorithm>

#include "base/logging.hh"

namespace dnasim
{

TwoWayIterative::TwoWayIterative(IterativeOptions options)
    : inner_(options)
{}

Strand
TwoWayIterative::reconstruct(const std::vector<Strand> &copies,
                             size_t design_len, Rng &rng) const
{
    if (copies.empty())
        return Strand();

    Strand forward = inner_.reconstruct(copies, design_len, rng);

    std::vector<Strand> reversed;
    reversed.reserve(copies.size());
    for (const auto &c : copies)
        reversed.push_back(reverseStrand(c));
    Strand backward = inner_.reconstruct(reversed, design_len, rng);

    const size_t front_len = (design_len + 1) / 2;
    const size_t back_len = design_len - front_len;

    Strand out = forward.substr(0, front_len);
    Strand back(backward.begin(),
                backward.begin() + static_cast<ptrdiff_t>(back_len));
    std::reverse(back.begin(), back.end());
    out += back;
    DNASIM_ASSERT(out.size() == design_len,
                  "two-way iterative length invariant");
    return out;
}

} // namespace dnasim
