/**
 * @file
 * Shared consensus helpers for the reconstruction algorithms.
 */

#ifndef DNASIM_RECONSTRUCT_CONSENSUS_HH
#define DNASIM_RECONSTRUCT_CONSENSUS_HH

#include <array>
#include <span>
#include <vector>

#include "base/dna.hh"
#include "base/rng.hh"

namespace dnasim
{

/**
 * Per-position plurality vote over copies (direct indexing, no
 * alignment): position i collects copy[i] from every copy longer
 * than i. The result has exactly @p design_len characters; positions
 * where no copy votes are filled with 'A'. Ties break uniformly at
 * random via @p rng.
 *
 * Optional @p weights (same size as @p copies) weight each copy's
 * vote; pass an empty span for unweighted voting.
 */
Strand positionalPlurality(std::span<const Strand> copies,
                           size_t design_len, Rng &rng,
                           std::span<const double> weights = {});

/**
 * Plurality vote over a set of single characters with random
 * tie-breaking. Returns 'A' when @p votes is empty.
 */
char pluralityChar(std::span<const char> votes, Rng &rng);

/**
 * One round of alignment-based (star-MSA) consensus refinement.
 *
 * Every copy is aligned to @p estimate by minimum edit distance;
 * each estimate position then collects base votes (from equal and
 * substituted characters), deletion votes, and insertion votes for
 * the gaps between positions. The refined string keeps a position's
 * plurality base, drops positions whose deletion votes exceed half
 * the (weighted) copies, and materializes insertions supported by
 * more than half of them.
 *
 * Optional @p weights (same size as @p copies) scale each copy's
 * votes; pass an empty span for unweighted voting.
 *
 * The result's length may differ from the estimate's; callers
 * typically iterate to a fixpoint and then enforce the design
 * length.
 */
Strand alignedConsensus(const Strand &estimate,
                        std::span<const Strand> copies, Rng &rng,
                        std::span<const double> weights = {});

/**
 * Enforce the design length on a converged consensus estimate by
 * maximum-likelihood single-indel moves.
 *
 * A consensus can converge one or two bases long or short when a
 * spurious indel inside a homopolymer run stays below the voting
 * majority (other copies' length differences get traded into
 * substitution chains elsewhere in their minimum edit scripts). The
 * design length is side information every DNA-storage system has, so
 * instead of blind padding/truncation this repeatedly applies the
 * single insertion or deletion that minimizes the total edit
 * distance between the estimate and the cluster, with candidates
 * short-listed by indel votes.
 */
Strand enforceDesignLength(Strand estimate,
                           std::span<const Strand> copies,
                           size_t design_len, Rng &rng);

/** Sum of edit distances from @p estimate to every copy. */
size_t totalEditDistance(const Strand &estimate,
                         std::span<const Strand> copies);

/**
 * Per-position voting summary of a consensus decision, captured for
 * failure forensics (src/analysis/lineage.hh): how strongly each
 * base was supported and by what margin the winner won.
 */
struct PositionVote
{
    std::array<uint32_t, kNumBases> base_votes{};
    uint32_t deletion_votes = 0; ///< copies whose alignment deletes
                                 ///< this position

    uint32_t
    votes(char base) const
    {
        return base_votes[baseIndex(base)];
    }

    uint32_t
    totalBaseVotes() const
    {
        uint32_t t = 0;
        for (uint32_t v : base_votes)
            t += v;
        return t;
    }

    /** Winner's votes minus runner-up's votes (0 on a tie). */
    uint32_t margin() const;
};

/**
 * Per-position vote profile of @p copies aligned against
 * @p estimate — the same deterministic leftmost edit scripts
 * alignedConsensus() votes with (editOpsInto with a null Rng), so
 * the attribution engine can reconstruct each consensus decision
 * after the fact. Element i summarizes the votes at estimate
 * position i.
 *
 * A non-null @p per_copy additionally receives, per copy, a string
 * of length estimate.size(): the base that copy's alignment votes at
 * each position, '-' for a deletion vote, or '\0' when the copy
 * casts no vote there.
 */
std::vector<PositionVote>
consensusVoteProfile(const Strand &estimate,
                     std::span<const Strand> copies,
                     std::vector<std::string> *per_copy = nullptr);

/** Accumulates weighted votes over the four bases. */
class BaseVote
{
  public:
    void
    add(char base, double weight = 1.0)
    {
        counts_[baseIndex(base)] += weight;
    }

    bool
    empty() const
    {
        for (double c : counts_)
            if (c > 0.0)
                return false;
        return true;
    }

    /** Winning base; ties break uniformly at random. */
    char winner(Rng &rng) const;

    void
    clear()
    {
        counts_.fill(0.0);
    }

  private:
    std::array<double, kNumBases> counts_{};
};

} // namespace dnasim

#endif // DNASIM_RECONSTRUCT_CONSENSUS_HH
