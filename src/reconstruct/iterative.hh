/**
 * @file
 * Iterative reconstruction (Sabary et al. [21]).
 *
 * The algorithm starts from a *forward* cursor-consensus pass
 * (anchored at the strand start) and then iterates alignment-based
 * consensus refinement to a fixpoint: every copy is aligned to the
 * current estimate by minimum edit distance, positions vote
 * (including deletion and insertion votes), and the refined estimate
 * replaces the old one.
 *
 * Because the seed pass scans forward from the start of the strand,
 * alignment errors that survive refinement concentrate toward the
 * end: the residual Hamming profile grows roughly linearly with
 * position (Fig. 3.4a), the gestalt-aligned residuals pile up at the
 * strand's end, and the residual errors are dominated by deletions
 * (section 3.4.1). Those mechanistic properties are what the
 * paper's sensitivity analysis probes, and the two-way variant
 * (reconstruct/twoway_iterative.hh) is the fix it proposes
 * (section 4.3).
 */

#ifndef DNASIM_RECONSTRUCT_ITERATIVE_HH
#define DNASIM_RECONSTRUCT_ITERATIVE_HH

#include "reconstruct/reconstructor.hh"

namespace dnasim
{

/** Options for Iterative. */
struct IterativeOptions
{
    /// Maximum refinement rounds before giving up on convergence.
    size_t max_rounds = 10;
    /// Enforce the design length with maximum-likelihood
    /// single-indel moves. Disabling this reproduces the original
    /// algorithm's behaviour of emitting variable-length estimates,
    /// whose residual errors are dominated by deletions (the
    /// consensus converges short when copies carry net deletions;
    /// section 3.4.1 reports ~90% deletions).
    bool enforce_length = true;
};

/** The Iterative reconstructor. */
class Iterative : public Reconstructor
{
  public:
    explicit Iterative(IterativeOptions options = {});

    Strand reconstruct(const std::vector<Strand> &copies,
                       size_t design_len, Rng &rng) const override;

    std::string
    name() const override
    {
        return options_.enforce_length ? "Iterative"
                                       : "Iterative-raw";
    }

    const IterativeOptions &options() const { return options_; }

  private:
    IterativeOptions options_;
};

} // namespace dnasim

#endif // DNASIM_RECONSTRUCT_ITERATIVE_HH
