#include "reconstruct/iterative.hh"

#include "base/logging.hh"
#include "reconstruct/bma.hh"
#include "reconstruct/consensus.hh"

namespace dnasim
{

Iterative::Iterative(IterativeOptions options)
    : options_(options)
{
    DNASIM_ASSERT(options_.max_rounds > 0, "zero iterative rounds");
}

Strand
Iterative::reconstruct(const std::vector<Strand> &copies,
                       size_t design_len, Rng &rng) const
{
    if (copies.empty())
        return Strand();

    // Seed: a forward cursor-consensus pass, anchored at the strand
    // start (this is what makes the algorithm one-directional).
    Strand estimate =
        BmaLookahead::forwardPass(copies, design_len, rng);

    for (size_t round = 0; round < options_.max_rounds; ++round) {
        Strand next = alignedConsensus(estimate, copies, rng);
        if (next == estimate)
            break;
        estimate = std::move(next);
    }

    if (!options_.enforce_length)
        return estimate;
    // The design length is side information every DNA-storage
    // reconstructor has; enforce it with maximum-likelihood
    // single-indel moves.
    return enforceDesignLength(std::move(estimate), copies,
                               design_len, rng);
}

} // namespace dnasim
