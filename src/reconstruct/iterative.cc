#include "reconstruct/iterative.hh"

#include "base/logging.hh"
#include "obs/stats.hh"
#include "reconstruct/bma.hh"
#include "reconstruct/consensus.hh"

namespace dnasim
{

namespace
{

struct IterativeStats
{
    obs::Counter &clusters;
    obs::Counter &rounds;
    obs::Distribution &rounds_per_cluster;

    static IterativeStats &
    get()
    {
        auto &reg = obs::Registry::global();
        static IterativeStats is{
            reg.counter("reconstruct.iterative.clusters",
                        "clusters reconstructed by Iterative"),
            reg.counter("reconstruct.iterative.rounds",
                        "aligned-consensus refinement rounds run"),
            reg.distribution("reconstruct.iterative.rounds_per_"
                             "cluster",
                             "refinement rounds until convergence"),
        };
        return is;
    }
};

} // anonymous namespace

Iterative::Iterative(IterativeOptions options)
    : options_(options)
{
    DNASIM_ASSERT(options_.max_rounds > 0, "zero iterative rounds");
}

Strand
Iterative::reconstruct(const std::vector<Strand> &copies,
                       size_t design_len, Rng &rng) const
{
    if (copies.empty())
        return Strand();

    // Seed: a forward cursor-consensus pass, anchored at the strand
    // start (this is what makes the algorithm one-directional).
    Strand estimate =
        BmaLookahead::forwardPass(copies, design_len, rng);

    IterativeStats &is = IterativeStats::get();
    is.clusters.inc();
    uint64_t rounds_run = 0;
    for (size_t round = 0; round < options_.max_rounds; ++round) {
        Strand next = alignedConsensus(estimate, copies, rng);
        ++rounds_run;
        if (next == estimate)
            break;
        estimate = std::move(next);
    }
    is.rounds.add(rounds_run);
    is.rounds_per_cluster.record(rounds_run);

    if (!options_.enforce_length)
        return estimate;
    // The design length is side information every DNA-storage
    // reconstructor has; enforce it with maximum-likelihood
    // single-indel moves.
    return enforceDesignLength(std::move(estimate), copies,
                               design_len, rng);
}

} // namespace dnasim
