/**
 * @file
 * Weighted Iterative reconstruction — the second improvement floated
 * in section 4.3: "using heuristics to assign a higher weightage to
 * noisy copies that closely align with the partially reconstructed
 * strand".
 *
 * Each round, copies vote in proportion to their gestalt similarity
 * with the current estimate, so badly corrupted copies (bursts,
 * heavy indel drift) lose influence instead of dragging the
 * consensus off register.
 */

#ifndef DNASIM_RECONSTRUCT_WEIGHTED_ITERATIVE_HH
#define DNASIM_RECONSTRUCT_WEIGHTED_ITERATIVE_HH

#include "reconstruct/iterative.hh"
#include "reconstruct/reconstructor.hh"

namespace dnasim
{

/** Options for WeightedIterative. */
struct WeightedIterativeOptions
{
    size_t max_rounds = 10;
    /// Gestalt scores are raised to this power when used as vote
    /// weights; larger sharpens the preference for well-aligned
    /// copies.
    double weight_power = 4.0;
};

/** Iterative reconstruction with similarity-weighted voting. */
class WeightedIterative : public Reconstructor
{
  public:
    explicit WeightedIterative(WeightedIterativeOptions options = {});

    Strand reconstruct(const std::vector<Strand> &copies,
                       size_t design_len, Rng &rng) const override;
    std::string name() const override { return "Iterative-weighted"; }

  private:
    WeightedIterativeOptions options_;
};

} // namespace dnasim

#endif // DNASIM_RECONSTRUCT_WEIGHTED_ITERATIVE_HH
