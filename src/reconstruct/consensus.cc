#include "reconstruct/consensus.hh"

#include <algorithm>
#include <limits>

#include "align/edit_distance.hh"
#include "align/myers_batch.hh"
#include "align/path_stats.hh"
#include "base/logging.hh"
#include "base/packed.hh"

namespace dnasim
{

char
BaseVote::winner(Rng &rng) const
{
    double best = -1.0;
    size_t num_best = 0;
    std::array<size_t, kNumBases> tied{};
    for (size_t b = 0; b < kNumBases; ++b) {
        if (counts_[b] > best) {
            best = counts_[b];
            tied[0] = b;
            num_best = 1;
        } else if (counts_[b] == best) {
            tied[num_best++] = b;
        }
    }
    DNASIM_ASSERT(num_best > 0, "vote with no candidates");
    size_t pick = num_best == 1 ? tied[0] : tied[rng.index(num_best)];
    return kBaseChars[pick];
}

char
pluralityChar(std::span<const char> votes, Rng &rng)
{
    if (votes.empty())
        return 'A';
    BaseVote vote;
    for (char c : votes)
        vote.add(c);
    return vote.winner(rng);
}

namespace
{

/**
 * Unweighted column voting over packed words: each copy is packed
 * once (into a reused arena) and its 2-bit codes are streamed into
 * per-column integer counters, 32 columns per word load. The
 * per-column winner logic mirrors BaseVote::winner exactly —
 * including the order of tie candidates and when the Rng is
 * consumed — so the result is bit-identical to the character path
 * (unit weights are exact in both integer and double arithmetic).
 *
 * Returns false (leaving @p out untouched and the Rng unconsumed)
 * when a copy contains a non-ACGT character; the caller then runs
 * the generic weighted path.
 */
bool
packedPlurality(std::span<const Strand> copies, size_t design_len,
                Rng &rng, Strand &out)
{
    thread_local std::vector<uint64_t> packed;
    thread_local std::vector<uint32_t> counts;
    counts.assign(kNumBases * design_len, 0);

    for (const Strand &copy : copies) {
        size_t plen = 0;
        if (!packWordsInto(copy, design_len, packed, &plen))
            return false;
        size_t pos = 0;
        for (size_t w = 0; w < packed.size(); ++w) {
            uint64_t word = packed[w];
            const size_t stop = std::min(
                plen, (w + 1) * PackedStrand::kBasesPerWord);
            for (; pos < stop; ++pos, word >>= 2)
                ++counts[pos * kNumBases + (word & 3u)];
        }
    }

    out.clear();
    out.reserve(design_len);
    for (size_t pos = 0; pos < design_len; ++pos) {
        const uint32_t *c = &counts[pos * kNumBases];
        if (c[0] == 0 && c[1] == 0 && c[2] == 0 && c[3] == 0) {
            out.push_back('A'); // no copy reaches this column
            continue;
        }
        uint32_t best = 0;
        size_t num_best = 0;
        std::array<size_t, kNumBases> tied{};
        for (size_t b = 0; b < kNumBases; ++b) {
            if (b == 0 || c[b] > best) {
                best = c[b];
                tied[0] = b;
                num_best = 1;
            } else if (c[b] == best) {
                tied[num_best++] = b;
            }
        }
        size_t pick =
            num_best == 1 ? tied[0] : tied[rng.index(num_best)];
        out.push_back(kBaseChars[pick]);
    }
    return true;
}

} // anonymous namespace

Strand
positionalPlurality(std::span<const Strand> copies, size_t design_len,
                    Rng &rng, std::span<const double> weights)
{
    DNASIM_ASSERT(weights.empty() || weights.size() == copies.size(),
                  "weight/copy count mismatch");
    auto &ps = align_detail::PathStats::get();
    Strand out;
    if (weights.empty() &&
        packedPlurality(copies, design_len, rng, out)) {
        ps.packed_fastpath.inc();
        return out;
    }
    ps.char_fallback.inc();
    out.clear();
    out.reserve(design_len);
    BaseVote vote;
    for (size_t pos = 0; pos < design_len; ++pos) {
        vote.clear();
        for (size_t k = 0; k < copies.size(); ++k) {
            if (pos >= copies[k].size())
                continue;
            double w = weights.empty() ? 1.0 : weights[k];
            if (w > 0.0)
                vote.add(copies[k][pos], w);
        }
        out.push_back(vote.empty() ? 'A' : vote.winner(rng));
    }
    return out;
}

Strand
alignedConsensus(const Strand &estimate,
                 std::span<const Strand> copies, Rng &rng,
                 std::span<const double> weights)
{
    DNASIM_ASSERT(weights.empty() || weights.size() == copies.size(),
                  "weight/copy count mismatch");
    const size_t len = estimate.size();

    // Reused vote buffers: one alignedConsensus call runs per
    // refinement round per cluster, and the old per-call vectors
    // were a steady allocation source in the reconstruction loop.
    thread_local std::vector<BaseVote> base_votes;
    thread_local std::vector<double> del_votes;
    thread_local std::vector<std::array<double, kNumBases>> ins_votes;
    thread_local std::vector<EditOp> ops;
    base_votes.assign(len, BaseVote{});
    del_votes.assign(len, 0.0);
    // Insertion votes for the gap before position i (i == len is an
    // append).
    ins_votes.assign(len + 1, std::array<double, kNumBases>{});
    double total_weight = 0.0;

    // One Peq table build for the estimate serves the edit-script
    // engine across every copy in the cluster.
    thread_local MyersPattern pattern;
    pattern.assign(estimate);

    for (size_t c = 0; c < copies.size(); ++c) {
        double w = weights.empty() ? 1.0 : weights[c];
        if (w <= 0.0)
            continue;
        total_weight += w;
        // Deterministic (leftmost) alignments keep equally-minimal
        // edit scripts attributed to the same positions across
        // copies, so their votes reinforce instead of spreading.
        editOpsInto(pattern, estimate, copies[c], nullptr, ops);
        for (const auto &op : ops) {
            switch (op.type) {
              case EditOpType::Equal:
              case EditOpType::Substitute:
                base_votes[op.ref_pos].add(op.copy_base, w);
                break;
              case EditOpType::Delete:
                del_votes[op.ref_pos] += w;
                break;
              case EditOpType::Insert:
                ins_votes[op.ref_pos][baseIndex(op.copy_base)] += w;
                break;
            }
        }
    }

    Strand out;
    out.reserve(len + 4);
    const double half = total_weight / 2.0;
    for (size_t i = 0; i <= len; ++i) {
        // Materialize at most one majority-supported insertion per
        // gap.
        size_t best = 0;
        for (size_t b = 1; b < kNumBases; ++b)
            if (ins_votes[i][b] > ins_votes[i][best])
                best = b;
        if (ins_votes[i][best] > half)
            out.push_back(kBaseChars[best]);
        if (i == len)
            break;
        if (del_votes[i] > half)
            continue; // majority says this position never existed
        out.push_back(base_votes[i].empty()
                          ? estimate[i]
                          : base_votes[i].winner(rng));
    }
    return out;
}

size_t
totalEditDistance(const Strand &estimate,
                  std::span<const Strand> copies)
{
    // One Myers pattern for the estimate, scored against every copy
    // by the batch kernel — one copy per SIMD lane, exact distances
    // (levenshtein() would rebuild the match tables per copy; the
    // old scalar loop ran one copy at a time). Pattern and view
    // scratch are thread-local so the candidate-scoring loop in
    // enforceDesignLength() stays allocation-free in steady state.
    thread_local MyersPattern pattern;
    thread_local std::vector<std::string_view> views;
    pattern.assign(estimate);
    views.assign(copies.begin(), copies.end());
    return myersBatchTotalDistance(pattern, views);
}

Strand
enforceDesignLength(Strand estimate, std::span<const Strand> copies,
                    size_t design_len, Rng &rng)
{
    constexpr size_t max_candidates = 8;
    size_t guard = 8;

    // Per-iteration voting and candidate scratch, hoisted out of the
    // loop (and the function) to match the allocation discipline of
    // alignedConsensus(): this runs for every length-mismatched
    // cluster, up to eight rounds each.
    thread_local std::vector<double> del_votes;
    thread_local std::vector<std::array<double, kNumBases>> ins_votes;
    thread_local std::vector<EditOp> ops;
    thread_local std::vector<Strand> candidates;
    thread_local std::vector<size_t> order;
    thread_local MyersPattern pattern;

    while (estimate.size() != design_len && guard-- > 0) {
        const size_t len = estimate.size();

        // Vote over indel attributions against the current estimate.
        del_votes.assign(len, 0.0);
        ins_votes.assign(len + 1, std::array<double, kNumBases>{});
        pattern.assign(estimate);
        for (const auto &copy : copies) {
            editOpsInto(pattern, estimate, copy, nullptr, ops);
            for (const auto &op : ops) {
                if (op.type == EditOpType::Delete)
                    del_votes[op.ref_pos] += 1.0;
                else if (op.type == EditOpType::Insert)
                    ins_votes[op.ref_pos][baseIndex(op.copy_base)] +=
                        1.0;
            }
        }

        candidates.clear();
        if (len > design_len) {
            // Rank positions by deletion votes; always include the
            // last position as a fallback.
            order.resize(len);
            for (size_t i = 0; i < len; ++i)
                order[i] = i;
            std::sort(order.begin(), order.end(),
                      [&](size_t a, size_t b) {
                          return del_votes[a] > del_votes[b];
                      });
            for (size_t k = 0;
                 k < std::min(max_candidates, order.size()); ++k) {
                Strand cand = estimate;
                cand.erase(cand.begin() +
                           static_cast<ptrdiff_t>(order[k]));
                candidates.push_back(std::move(cand));
            }
            Strand tail = estimate;
            tail.pop_back();
            candidates.push_back(std::move(tail));
        } else {
            // Rank (gap, base) insertions by votes; fall back to
            // appending each base at the end.
            struct GapCand
            {
                size_t gap;
                size_t base;
                double votes;
            };
            thread_local std::vector<GapCand> gaps;
            gaps.clear();
            for (size_t g = 0; g <= len; ++g)
                for (size_t b = 0; b < kNumBases; ++b)
                    if (ins_votes[g][b] > 0.0)
                        gaps.push_back({g, b, ins_votes[g][b]});
            std::sort(gaps.begin(), gaps.end(),
                      [](const GapCand &a, const GapCand &b) {
                          return a.votes > b.votes;
                      });
            for (size_t k = 0;
                 k < std::min(max_candidates, gaps.size()); ++k) {
                Strand cand = estimate;
                cand.insert(cand.begin() +
                                static_cast<ptrdiff_t>(gaps[k].gap),
                            kBaseChars[gaps[k].base]);
                candidates.push_back(std::move(cand));
            }
            for (char base : kBaseChars) {
                Strand cand = estimate;
                cand.push_back(base);
                candidates.push_back(std::move(cand));
            }
        }

        // Pick the maximum-likelihood candidate (minimum total edit
        // distance to the cluster).
        size_t best_idx = 0;
        size_t best_cost = std::numeric_limits<size_t>::max();
        for (size_t k = 0; k < candidates.size(); ++k) {
            size_t cost = totalEditDistance(candidates[k], copies);
            if (cost < best_cost) {
                best_cost = cost;
                best_idx = k;
            }
        }
        estimate = std::move(candidates[best_idx]);

        // The length move may unblock further consensus refinement.
        Strand refined = alignedConsensus(estimate, copies, rng);
        if (refined.size() == design_len ||
            (refined.size() != estimate.size() &&
             totalEditDistance(refined, copies) <= best_cost)) {
            estimate = std::move(refined);
        }
    }

    // Guarantee the length even if the search stalled.
    if (estimate.size() > design_len)
        estimate.resize(design_len);
    while (estimate.size() < design_len)
        estimate.push_back('A');
    return estimate;
}

uint32_t
PositionVote::margin() const
{
    uint32_t best = 0, second = 0;
    for (uint32_t v : base_votes) {
        if (v > best) {
            second = best;
            best = v;
        } else if (v > second) {
            second = v;
        }
    }
    return best - second;
}

std::vector<PositionVote>
consensusVoteProfile(const Strand &estimate,
                     std::span<const Strand> copies,
                     std::vector<std::string> *per_copy)
{
    std::vector<PositionVote> votes(estimate.size());
    if (per_copy != nullptr)
        per_copy->assign(copies.size(),
                         std::string(estimate.size(), '\0'));

    thread_local std::vector<EditOp> ops;
    thread_local MyersPattern pattern;
    pattern.assign(estimate);
    for (size_t k = 0; k < copies.size(); ++k) {
        // Null Rng: deterministic leftmost scripts, the same
        // alignment alignedConsensus() collects votes from.
        editOpsInto(pattern, estimate, copies[k], nullptr, ops);
        for (const EditOp &op : ops) {
            if (op.ref_pos >= estimate.size())
                continue;
            switch (op.type) {
              case EditOpType::Equal:
              case EditOpType::Substitute:
                ++votes[op.ref_pos]
                      .base_votes[baseIndex(op.copy_base)];
                if (per_copy != nullptr)
                    (*per_copy)[k][op.ref_pos] = op.copy_base;
                break;
              case EditOpType::Delete:
                ++votes[op.ref_pos].deletion_votes;
                if (per_copy != nullptr)
                    (*per_copy)[k][op.ref_pos] = '-';
                break;
              case EditOpType::Insert:
                break; // between-position votes: not positional
            }
        }
    }
    return votes;
}

} // namespace dnasim
