#include "reconstruct/divider_bma.hh"

#include "reconstruct/consensus.hh"

namespace dnasim
{

namespace
{

/**
 * Realign a copy assumed to contain net deletions against the guide:
 * walk both strings, marking a guide position as deleted (gap) when
 * the copy's current character already matches the next guide
 * character. Returns a length-|guide| string with '\0' gaps.
 */
std::string
realignShort(const Strand &copy, const Strand &guide)
{
    std::string aligned(guide.size(), '\0');
    size_t c = 0;
    for (size_t pos = 0; pos < guide.size() && c < copy.size(); ++pos) {
        if (copy[c] == guide[pos]) {
            aligned[pos] = copy[c];
            ++c;
        } else if (pos + 1 < guide.size() && copy[c] == guide[pos + 1]) {
            // Deletion of guide[pos]: leave a gap, do not consume.
        } else {
            // Treat as substitution to keep the cursor in register.
            aligned[pos] = copy[c];
            ++c;
        }
    }
    return aligned;
}

/**
 * Realign a copy assumed to contain net insertions: skip copy
 * characters that do not match when the following one does.
 */
std::string
realignLong(const Strand &copy, const Strand &guide)
{
    std::string aligned(guide.size(), '\0');
    size_t c = 0;
    for (size_t pos = 0; pos < guide.size() && c < copy.size(); ++pos) {
        if (copy[c] == guide[pos]) {
            aligned[pos] = copy[c];
            ++c;
        } else if (c + 1 < copy.size() && copy[c + 1] == guide[pos]) {
            // Insertion: drop the extra character.
            aligned[pos] = copy[c + 1];
            c += 2;
        } else {
            aligned[pos] = copy[c];
            ++c;
        }
    }
    return aligned;
}

} // anonymous namespace

Strand
DividerBma::reconstruct(const std::vector<Strand> &copies,
                        size_t design_len, Rng &rng) const
{
    if (copies.empty())
        return Strand();

    std::vector<Strand> equal, shorter, longer;
    for (const auto &c : copies) {
        if (c.size() == design_len)
            equal.push_back(c);
        else if (c.size() < design_len)
            shorter.push_back(c);
        else
            longer.push_back(c);
    }

    // The guide consensus: the equal-length copies when available,
    // otherwise a raw positional plurality. (The algorithm targets
    // low-error regimes where most copies have the design length; on
    // high-error data the guide — and with it the realignment of the
    // other groups — degrades, which is the collapse Table 2.1
    // reports.)
    Strand guide = !equal.empty()
                       ? positionalPlurality(equal, design_len, rng)
                       : positionalPlurality(copies, design_len, rng);

    // Vote: equal-length copies directly, short/long copies after
    // deletion-only / insertion-only realignment against the guide.
    std::vector<std::string> realigned;
    realigned.reserve(shorter.size() + longer.size());
    for (const auto &c : shorter)
        realigned.push_back(realignShort(c, guide));
    for (const auto &c : longer)
        realigned.push_back(realignLong(c, guide));

    Strand out;
    out.reserve(design_len);
    BaseVote vote;
    for (size_t pos = 0; pos < design_len; ++pos) {
        vote.clear();
        for (const auto &c : equal)
            vote.add(c[pos]);
        for (const auto &a : realigned)
            if (a[pos] != '\0')
                vote.add(a[pos]);
        out.push_back(vote.empty() ? guide[pos] : vote.winner(rng));
    }
    return out;
}

} // namespace dnasim
