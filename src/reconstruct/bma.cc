#include "reconstruct/bma.hh"

#include <algorithm>

#include "base/logging.hh"
#include "obs/stats.hh"
#include "reconstruct/consensus.hh"

namespace dnasim
{

namespace
{

struct BmaStats
{
    obs::Counter &clusters;
    obs::Counter &lookaheads;

    static BmaStats &
    get()
    {
        auto &reg = obs::Registry::global();
        static BmaStats bs{
            reg.counter("reconstruct.bma.clusters",
                        "clusters reconstructed by BMA"),
            reg.counter("reconstruct.bma.lookaheads",
                        "disagreements resolved by look-ahead "
                        "scoring"),
        };
        return bs;
    }
};

} // anonymous namespace

BmaLookahead::BmaLookahead(BmaOptions options)
    : options_(options)
{}

std::string
BmaLookahead::name() const
{
    return options_.two_way ? "BMA" : "BMA-oneway";
}

Strand
BmaLookahead::forwardPass(const std::vector<Strand> &copies,
                          size_t design_len, Rng &rng, size_t window)
{
    DNASIM_ASSERT(window >= 1, "BMA window must be at least 1");
    const size_t k = copies.size();
    std::vector<size_t> cursor(k, 0);
    uint64_t lookaheads = 0;

    Strand estimate;
    estimate.reserve(design_len);

    // Votes at the cursor and up to `window` characters ahead; the
    // look-ahead majorities approximate the upcoming reference
    // characters for the error-classification hypotheses.
    std::vector<BaseVote> votes(window + 1);
    std::vector<char> m(window + 1, '\0');
    for (size_t pos = 0; pos < design_len; ++pos) {
        for (auto &v : votes)
            v.clear();
        for (size_t c = 0; c < k; ++c) {
            const Strand &copy = copies[c];
            for (size_t off = 0; off <= window; ++off)
                if (cursor[c] + off < copy.size())
                    votes[off].add(copy[cursor[c] + off]);
        }
        if (votes[0].empty()) {
            // Every cursor ran off its copy; emit a neutral filler so
            // the estimate keeps the design length.
            estimate.push_back('A');
            continue;
        }
        const char maj = votes[0].winner(rng);
        estimate.push_back(maj);

        // Look-ahead majorities m[0] = maj, m[1..window].
        m[0] = maj;
        for (size_t off = 1; off <= window; ++off)
            m[off] = votes[off].empty() ? '\0'
                                        : votes[off].winner(rng);

        for (size_t c = 0; c < k; ++c) {
            const Strand &copy = copies[c];
            if (cursor[c] >= copy.size())
                continue;
            if (copy[cursor[c]] == maj) {
                ++cursor[c];
                continue;
            }

            // Disagreement: score the three hypotheses over the
            // look-ahead window.
            auto at = [&](size_t off) -> char {
                return cursor[c] + off < copy.size()
                           ? copy[cursor[c] + off]
                           : '\0';
            };
            auto match = [](char a, char b) {
                return a != '\0' && a == b ? 1 : 0;
            };
            ++lookaheads;
            int sub_score = 0, ins_score = 0, del_score = 0;
            for (size_t off = 1; off <= window; ++off) {
                // Substitution: the copy consumed one wrong
                // character; what follows matches the upcoming
                // majorities in lockstep.
                sub_score += match(at(off), m[off]);
                // Insertion: the current character is an extra; the
                // rest is shifted one ahead of the majorities.
                ins_score += match(at(off), m[off - 1]);
                // Deletion: the copy is missing the current
                // reference character; it is one behind the
                // majorities.
                del_score += match(at(off - 1), m[off]);
            }

            if (ins_score > sub_score && ins_score >= del_score) {
                cursor[c] += 2; // skip the insertion + the match
            } else if (del_score > sub_score &&
                       del_score > ins_score) {
                // do not consume: the copy already shows the next
                // reference character
            } else {
                ++cursor[c]; // substitution
            }
        }
    }
    if (lookaheads)
        BmaStats::get().lookaheads.add(lookaheads);
    return estimate;
}

Strand
BmaLookahead::reconstruct(const std::vector<Strand> &copies,
                          size_t design_len, Rng &rng) const
{
    if (copies.empty())
        return Strand();
    BmaStats::get().clusters.inc();

    if (!options_.two_way)
        return forwardPass(copies, design_len, rng, options_.window);

    // Two-way execution: forward pass for the first half, a pass
    // over the reversed copies for the second half.
    Strand forward = forwardPass(copies, design_len, rng, options_.window);

    std::vector<Strand> reversed;
    reversed.reserve(copies.size());
    for (const auto &c : copies)
        reversed.push_back(reverseStrand(c));
    Strand backward = forwardPass(reversed, design_len, rng, options_.window);

    const size_t front_len = (design_len + 1) / 2;
    const size_t back_len = design_len - front_len;

    Strand out = forward.substr(0, front_len);
    Strand back(backward.begin(),
                backward.begin() + static_cast<ptrdiff_t>(back_len));
    std::reverse(back.begin(), back.end());
    out += back;
    DNASIM_ASSERT(out.size() == design_len, "BMA length invariant");
    return out;
}

} // namespace dnasim
