/**
 * @file
 * Divider BMA (Sabary et al. [21]).
 *
 * The cluster is partitioned by copy length relative to the design
 * length L: copies of exactly length L are assumed to carry only
 * substitutions and vote position-wise; shorter copies (net
 * deletions) and longer copies (net insertions) are realigned with
 * deletion-only / insertion-only BMA cursor passes guided by the
 * equal-length consensus before voting.
 *
 * On low-error data this partition is sharp and the algorithm is
 * strong; on high-error Nanopore-like data almost no copy has
 * exactly the design length and the ones that do still carry
 * substitutions, so per-strand accuracy collapses — the behaviour
 * visible in Table 2.1 (2.73% on real data).
 */

#ifndef DNASIM_RECONSTRUCT_DIVIDER_BMA_HH
#define DNASIM_RECONSTRUCT_DIVIDER_BMA_HH

#include "reconstruct/reconstructor.hh"

namespace dnasim
{

/** Divider BMA reconstructor. */
class DividerBma : public Reconstructor
{
  public:
    DividerBma() = default;

    Strand reconstruct(const std::vector<Strand> &copies,
                       size_t design_len, Rng &rng) const override;
    std::string name() const override { return "DivBMA"; }
};

} // namespace dnasim

#endif // DNASIM_RECONSTRUCT_DIVIDER_BMA_HH
