/**
 * @file
 * The trace-reconstruction interface.
 *
 * A reconstructor receives a cluster of noisy copies of an unknown
 * reference strand and produces an estimate of it (section 1.1.2).
 * All implementations take the design length as side information
 * (DNA-storage systems fix the synthesized strand length) and an Rng
 * for tie-breaking, so runs are reproducible.
 */

#ifndef DNASIM_RECONSTRUCT_RECONSTRUCTOR_HH
#define DNASIM_RECONSTRUCT_RECONSTRUCTOR_HH

#include <string>
#include <vector>

#include "base/dna.hh"
#include "base/rng.hh"

namespace dnasim
{

/** Estimates a reference strand from its noisy copies. */
class Reconstructor
{
  public:
    virtual ~Reconstructor() = default;

    /**
     * Reconstruct from @p copies. Returns the empty strand for an
     * empty cluster (an erasure).
     */
    virtual Strand reconstruct(const std::vector<Strand> &copies,
                               size_t design_len, Rng &rng) const = 0;

    /** Algorithm name for reports (e.g. "BMA", "Iterative"). */
    virtual std::string name() const = 0;
};

} // namespace dnasim

#endif // DNASIM_RECONSTRUCT_RECONSTRUCTOR_HH
