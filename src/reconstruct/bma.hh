/**
 * @file
 * Bitwise Majority Alignment with look-ahead (BMA Look-Ahead, Batu
 * et al. [3]).
 *
 * Each copy keeps a cursor. At every output position the active
 * cursor characters vote; the plurality becomes the next estimate
 * character. Copies that disagree are classified with a one-step
 * look-ahead:
 *
 *  - insertion: the copy's *next* character matches the majority, so
 *    the current character is an inserted extra — the cursor skips
 *    two characters;
 *  - deletion: the copy's current character matches the look-ahead
 *    estimate of the *next* majority, so the copy is missing the
 *    current reference character — the cursor stays put;
 *  - substitution otherwise — the cursor advances one.
 *
 * The paper's BMA performs *two-way execution* (section 3.2): the
 * forward pass reconstructs the first half, a second pass over the
 * reversed copies reconstructs the second half, and the two halves
 * are concatenated. Alignment drift therefore accumulates toward
 * the middle of the strand, producing the A-shaped residual error
 * profile of Fig. 3.4c. One-way execution is available for
 * sensitivity studies.
 */

#ifndef DNASIM_RECONSTRUCT_BMA_HH
#define DNASIM_RECONSTRUCT_BMA_HH

#include "reconstruct/reconstructor.hh"

namespace dnasim
{

/** Options for BmaLookahead. */
struct BmaOptions
{
    /// Two-way execution (forward + backward halves); the paper's
    /// default BMA behaviour.
    bool two_way = true;
    /// Look-ahead window (characters compared per error
    /// hypothesis). 1 reproduces the classic next-character check;
    /// larger windows disambiguate indels near repeats better.
    size_t window = 3;
};

/** BMA Look-Ahead reconstructor. */
class BmaLookahead : public Reconstructor
{
  public:
    explicit BmaLookahead(BmaOptions options = {});

    Strand reconstruct(const std::vector<Strand> &copies,
                       size_t design_len, Rng &rng) const override;
    std::string name() const override;

    const BmaOptions &options() const { return options_; }

    /**
     * A single forward pass over @p copies producing @p design_len
     * characters (exposed for the sensitivity analysis and tests).
     * @p window is the look-ahead depth.
     */
    static Strand forwardPass(const std::vector<Strand> &copies,
                              size_t design_len, Rng &rng,
                              size_t window = 3);

  private:
    BmaOptions options_;
};

} // namespace dnasim

#endif // DNASIM_RECONSTRUCT_BMA_HH
