#include "cluster/greedy_cluster.hh"

#include <algorithm>
#include <span>
#include <string_view>
#include <unordered_map>

#include "align/edit_distance.hh"
#include "align/myers_batch.hh"
#include "base/logging.hh"
#include "obs/progress.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "par/thread_pool.hh"

namespace dnasim
{

namespace
{

/**
 * Transparent hash so the anchor buckets can be probed with a
 * string_view into the read — the hot path used to build one
 * std::string key per probe, a per-read allocation.
 */
struct AnchorHash
{
    using is_transparent = void;

    size_t
    operator()(std::string_view s) const
    {
        return std::hash<std::string_view>{}(s);
    }
};

/**
 * Candidate-verification batch sizes. The first serial chunk is one
 * AVX2 lane group, so the common accept-at-the-front probe stays
 * nearly as cheap as the old one-at-a-time early exit; deeper scans
 * switch to full 16-candidate chunks that keep 4- and 8-wide
 * kernels saturated. The parallel path splits the candidate list
 * into the same 16-candidate chunks, one work item each. Both
 * schedules are fixed — independent of thread count and SIMD tier —
 * so probe order, and therefore the clustering, never varies with
 * either.
 */
constexpr size_t kFirstProbeChunk = 4;
constexpr size_t kProbeChunk = 16;

} // anonymous namespace

const char *
assignmentTierName(AssignmentTier tier)
{
    switch (tier) {
      case AssignmentTier::Fresh: return "fresh";
      case AssignmentTier::Anchor: return "anchor";
      case AssignmentTier::Sketch: return "sketch";
      case AssignmentTier::Greedy: return "greedy";
    }
    return "?";
}

std::vector<ReadCluster>
clusterReads(const std::vector<Strand> &reads,
             const ClusterOptions &options,
             std::vector<ReadAssignment> *assignments)
{
    return clusterReadsRange(StrandPoolView(reads), 0, reads.size(),
                             options, assignments);
}

std::vector<ReadCluster>
clusterReadsRange(const StrandPoolView &view, size_t offset,
                  size_t count, const ClusterOptions &options,
                  std::vector<ReadAssignment> *assignments)
{
    DNASIM_ASSERT(options.anchor_length > 0, "zero anchor length");
    DNASIM_ASSERT(offset + count <= view.size(),
                  "cluster range out of pool bounds");

    auto &reg = obs::Registry::global();
    static obs::Counter &stat_reads = reg.counter(
        "cluster.reads", "reads processed by greedy clustering");
    static obs::Counter &stat_comparisons = reg.counter(
        "cluster.comparisons",
        "read-to-representative edit-distance comparisons");
    static obs::Counter &stat_merges = reg.counter(
        "cluster.merges", "reads merged into an existing cluster");
    static obs::Counter &stat_created = reg.counter(
        "cluster.created", "fresh clusters opened");
    static obs::Timer &stat_time =
        reg.timer("cluster.time", "wall time in clusterReads()");
    static obs::Counter &stat_sk_bands = reg.counter(
        "cluster.sketch.bands_probed",
        "LSH band-bucket lookups by the sketch tier");
    static obs::Counter &stat_sk_collisions = reg.counter(
        "cluster.sketch.collisions",
        "cluster ids scanned in colliding band buckets");
    static obs::Counter &stat_sk_candidates = reg.counter(
        "cluster.sketch.candidates",
        "deduped sketch candidates emitted into probe lists");
    static obs::Counter &stat_sk_probes = reg.counter(
        "cluster.sketch.probes",
        "sketch candidates verified with the edit-distance gate");
    static obs::Counter &stat_sk_verified = reg.counter(
        "cluster.sketch.verified",
        "placements won by a sketch-tier candidate (probes minus "
        "verified over probes is the sketch false-positive rate)");
    static obs::Counter &stat_sk_empty = reg.counter(
        "cluster.sketch.empty_signatures",
        "reads with no sketchable k-mer (short or non-ACGT)");
    obs::ScopedTimer timer(stat_time);
    const bool use_sketch = options.index == ClusterIndexKind::Sketch;
    obs::ScopedTrace span(
        use_sketch ? "cluster.sketch" : "cluster.greedy", "cluster");
    uint64_t comparisons = 0;
    uint64_t sketch_probes = 0;
    uint64_t sketch_verified = 0;

    std::vector<ReadCluster> clusters;
    // One Myers pattern per *read*, probed against every candidate
    // representative through the batch kernel (one representative
    // per SIMD lane). Levenshtein is symmetric, so flipping the old
    // representative-as-pattern orientation changes no accept/reject
    // decision — and it lets a read's whole candidate list share one
    // pattern, where per-representative patterns could only serve
    // one text at a time. The pattern storage is reused across
    // reads (assign()), so the swap also drops the old
    // pattern-per-cluster cache and its O(clusters) memory.
    MyersPattern read_pattern;
    // anchor -> cluster indices whose representative starts with it.
    // string_view-keyed heterogeneous lookup: probing never copies
    // the anchor; only bucket creation materializes the key.
    std::unordered_map<std::string, std::vector<size_t>, AnchorHash,
                       std::equal_to<>>
        buckets;
    // Signatures for the whole range up front (parallel, order
    // preserving); the band index itself fills in as clusters open.
    std::optional<SketchIndex> sketch;
    if (use_sketch)
        sketch.emplace(view, offset, count, options.sketch);

    auto anchor_of = [&](std::string_view s) -> std::string_view {
        return s.substr(0, std::min(options.anchor_length, s.size()));
    };

    std::vector<size_t> candidates;
    std::vector<size_t> sketch_candidates;
    std::vector<size_t> distances;
    std::vector<std::string_view> rep_texts;
    // Epoch-stamped dedup across the probe tiers. The fallback tier
    // used to run std::find over the candidate list per scanned
    // cluster — O(candidates) each, quadratic across a probe window.
    EpochSeen seen;

    // Probe a candidate list in order; the first representative
    // within the threshold wins. Candidates are verified by the
    // batch Myers kernel — the read's pattern against one
    // representative per SIMD lane. The serial semantics — attach
    // to the first candidate in probe order — survive both chunking
    // and parallelization because the winner is selected by
    // candidate order, not by completion order. Probes use the
    // thresholded kernel: a probe's exact distance above the
    // threshold is irrelevant, so each lane abandons its text as
    // soon as the bound is certified, exactly like the scalar
    // probes this replaces. Placement decisions — and therefore the
    // clustering — are byte-identical to the scalar code at any
    // thread count and on every SIMD tier. probed reports how many
    // candidates were dispatched for verification (whole chunks).
    auto probe_list = [&](const std::vector<size_t> &cand,
                          size_t &probed) -> size_t {
        const size_t count = cand.size();
        probed = count;
        if (count == 0)
            return 0;
        rep_texts.resize(count);
        for (size_t k = 0; k < count; ++k)
            rep_texts[k] = clusters[cand[k]].representative;
        std::span<const std::string_view> texts{rep_texts};

        if (par::numThreads() > 1 &&
            count >= options.parallel_probe_min) {
            distances.assign(count, 0);
            std::span<size_t> dists{distances};
            const size_t chunks =
                (count + kProbeChunk - 1) / kProbeChunk;
            par::parallelFor(
                0, chunks,
                [&](size_t ch) {
                    const size_t lo = ch * kProbeChunk;
                    const size_t len =
                        std::min(kProbeChunk, count - lo);
                    myersBatchDistanceBounded(
                        read_pattern, texts.subspan(lo, len),
                        options.distance_threshold,
                        dists.subspan(lo, len));
                },
                /*grain=*/1);
            comparisons += count;
            for (size_t k = 0; k < count; ++k)
                if (distances[k] <= options.distance_threshold)
                    return k;
            return count;
        }

        distances.resize(count);
        std::span<size_t> dists{distances};
        size_t lo = 0;
        size_t chunk = kFirstProbeChunk;
        while (lo < count) {
            const size_t len = std::min(chunk, count - lo);
            myersBatchDistanceBounded(read_pattern,
                                      texts.subspan(lo, len),
                                      options.distance_threshold,
                                      dists.subspan(lo, len));
            comparisons += len;
            for (size_t k = lo; k < lo + len; ++k) {
                if (distances[k] <= options.distance_threshold) {
                    probed = lo + len;
                    return k;
                }
            }
            lo += len;
            chunk = kProbeChunk;
        }
        return count;
    };

    if (assignments != nullptr)
        assignments->assign(count, ReadAssignment{});

    // Strand materialization scratch: vector-backed views return
    // zero-copy references into the backing store, pool-backed views
    // unpack only the strand under the cursor into this buffer —
    // which is what keeps clustering RSS independent of pool size.
    Strand read_scratch;
    obs::ProgressScope progress("cluster", count);
    for (size_t i = 0; i < count; ++i) {
        const std::string_view read =
            view.chars(offset + i, read_scratch);
        progress.advance();
        read_pattern.assign(read);

        // Tier 1: candidate clusters sharing the anchor prefix.
        seen.begin(clusters.size());
        candidates.clear();
        auto it = buckets.find(anchor_of(read));
        if (it != buckets.end()) {
            candidates = it->second;
            for (size_t c : candidates)
                seen.set(c);
        }
        // Provenance: candidates below this index came from the
        // anchor bucket, at or above it from the greedy fallback.
        const size_t anchor_count = candidates.size();
        if (!use_sketch) {
            // Greedy tier 2: the bounded newest-first scan over
            // existing clusters, dedup'd against the anchor tier by
            // the epoch marks (same probe order as the original
            // std::find implementation).
            size_t extra = 0;
            for (size_t c = clusters.size();
                 c-- > 0 && extra < options.max_probes;) {
                if (!seen.testAndSet(c)) {
                    candidates.push_back(c);
                    ++extra;
                }
            }
        }
        if (candidates.size() > options.max_probes)
            candidates.resize(options.max_probes);

        size_t probed = 0;
        size_t pos = probe_list(candidates, probed);
        size_t placed_in = pos < candidates.size() ? candidates[pos]
                                                   : clusters.size();
        // Snapshot the winner's exact distance now: the distances
        // buffer is reused by the next probe_list call.
        AssignmentTier tier = AssignmentTier::Fresh;
        size_t verified_distance = 0;
        if (pos < candidates.size()) {
            tier = pos < anchor_count ? AssignmentTier::Anchor
                                      : AssignmentTier::Greedy;
            verified_distance = distances[pos];
        }

        // Sketch tier 2, only when the anchor tier rejected (the
        // common accept path never pays a band probe): MinHash band
        // collisions ranked by collision count then cluster id.
        if (use_sketch && placed_in == clusters.size()) {
            sketch_candidates.clear();
            sketch->appendCandidates(i, seen, options.max_probes,
                                     sketch_candidates);
            size_t sprobed = 0;
            size_t spos = probe_list(sketch_candidates, sprobed);
            sketch_probes += sprobed;
            probed += sprobed;
            if (spos < sketch_candidates.size()) {
                placed_in = sketch_candidates[spos];
                tier = AssignmentTier::Sketch;
                verified_distance = distances[spos];
                ++sketch_verified;
            }
        }

        if (assignments != nullptr) {
            auto &a = (*assignments)[i];
            a.cluster = static_cast<uint32_t>(
                placed_in == clusters.size() ? clusters.size()
                                             : placed_in);
            a.tier = tier;
            a.verified_distance =
                static_cast<uint32_t>(verified_distance);
            a.candidates_probed = static_cast<uint32_t>(probed);
        }

        if (placed_in == clusters.size()) {
            ReadCluster fresh;
            fresh.members.push_back(offset + i);
            fresh.representative = Strand(read);
            clusters.push_back(std::move(fresh));
            auto bucket = buckets.find(anchor_of(read));
            if (bucket == buckets.end()) {
                bucket = buckets
                             .emplace(std::string(anchor_of(read)),
                                      std::vector<size_t>())
                             .first;
            }
            bucket->second.push_back(clusters.size() - 1);
            if (use_sketch)
                sketch->addCluster(i, clusters.size() - 1);
            stat_created.inc();
        } else {
            clusters[placed_in].members.push_back(offset + i);
            stat_merges.inc();
        }
    }
    stat_reads.add(count);
    stat_comparisons.add(comparisons);
    if (use_sketch) {
        const SketchCounters &sc = sketch->counters();
        stat_sk_bands.add(sc.bands_probed);
        stat_sk_collisions.add(sc.collisions);
        stat_sk_candidates.add(sc.candidates);
        stat_sk_probes.add(sketch_probes);
        stat_sk_verified.add(sketch_verified);
        stat_sk_empty.add(sc.empty_signatures);
    }
    return clusters;
}

ClusterPurity
scoreClustering(const std::vector<ReadCluster> &clusters,
                const std::vector<size_t> &origins)
{
    ClusterPurity purity;
    purity.num_clusters = clusters.size();
    // Majority counting over a sorted scratch of the cluster's
    // origins: the longest run wins, first (= smallest origin) on
    // ties — the exact semantics of the ordered std::map this
    // replaces, without a node allocation per distinct origin.
    std::vector<size_t> scratch;
    for (const auto &cluster : clusters) {
        scratch.clear();
        scratch.reserve(cluster.members.size());
        for (size_t member : cluster.members) {
            DNASIM_ASSERT(member < origins.size(),
                          "read index out of range");
            scratch.push_back(origins[member]);
        }
        std::sort(scratch.begin(), scratch.end());
        size_t majority_origin = 0;
        size_t best = 0;
        for (size_t lo = 0; lo < scratch.size();) {
            size_t hi = lo;
            while (hi < scratch.size() && scratch[hi] == scratch[lo])
                ++hi;
            if (hi - lo > best) {
                best = hi - lo;
                majority_origin = scratch[lo];
            }
            lo = hi;
        }
        for (size_t member : cluster.members) {
            ++purity.num_reads;
            if (origins[member] == majority_origin)
                ++purity.correctly_clustered;
        }
    }
    return purity;
}

} // namespace dnasim
