#include "cluster/greedy_cluster.hh"

#include <algorithm>
#include <map>
#include <string_view>
#include <unordered_map>

#include "align/edit_distance.hh"
#include "base/logging.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "par/thread_pool.hh"

namespace dnasim
{

namespace
{

/**
 * Transparent hash so the anchor buckets can be probed with a
 * string_view into the read — the hot path used to build one
 * std::string key per probe, a per-read allocation.
 */
struct AnchorHash
{
    using is_transparent = void;

    size_t
    operator()(std::string_view s) const
    {
        return std::hash<std::string_view>{}(s);
    }
};

/**
 * Candidate probes below this count are not worth a per-read
 * fork/join: with the bit-parallel kernel a probe costs ~2 µs, so
 * the default 24-probe cap stays on the serial fast path and only
 * widened probe lists (corrupted-prefix fallbacks, large max_probes)
 * fan out.
 */
constexpr size_t kMinParallelProbes = 32;

} // anonymous namespace

std::vector<ReadCluster>
clusterReads(const std::vector<Strand> &reads,
             const ClusterOptions &options)
{
    DNASIM_ASSERT(options.anchor_length > 0, "zero anchor length");

    auto &reg = obs::Registry::global();
    static obs::Counter &stat_reads = reg.counter(
        "cluster.reads", "reads processed by greedy clustering");
    static obs::Counter &stat_comparisons = reg.counter(
        "cluster.comparisons",
        "read-to-representative edit-distance comparisons");
    static obs::Counter &stat_merges = reg.counter(
        "cluster.merges", "reads merged into an existing cluster");
    static obs::Counter &stat_created = reg.counter(
        "cluster.created", "fresh clusters opened");
    static obs::Timer &stat_time =
        reg.timer("cluster.time", "wall time in clusterReads()");
    obs::ScopedTimer timer(stat_time);
    obs::ScopedTrace span("cluster.greedy", "cluster");
    uint64_t comparisons = 0;

    std::vector<ReadCluster> clusters;
    // One Myers pattern per cluster representative, built when the
    // cluster opens and reused for every later probe. Probing used
    // to call levenshtein(), which rebuilds the bit-vector match
    // tables from the representative on every one of the thousands
    // of probes against it; the cached pattern pays that cost once.
    std::vector<MyersPattern> rep_patterns;
    // anchor -> cluster indices whose representative starts with it.
    // string_view-keyed heterogeneous lookup: probing never copies
    // the anchor; only bucket creation materializes the key.
    std::unordered_map<std::string, std::vector<size_t>, AnchorHash,
                       std::equal_to<>>
        buckets;

    auto anchor_of = [&](const Strand &s) -> std::string_view {
        return std::string_view(s).substr(
            0, std::min(options.anchor_length, s.size()));
    };

    std::vector<size_t> candidates;
    std::vector<size_t> distances;
    for (size_t i = 0; i < reads.size(); ++i) {
        const Strand &read = reads[i];

        // Probe candidate clusters sharing the anchor first, then
        // (bounded) recently created clusters as a fallback for
        // reads whose prefix was corrupted.
        candidates.clear();
        auto it = buckets.find(anchor_of(read));
        if (it != buckets.end())
            candidates = it->second;
        size_t extra = 0;
        for (size_t c = clusters.size(); c-- > 0 &&
                                         extra < options.max_probes;) {
            if (std::find(candidates.begin(), candidates.end(), c) ==
                candidates.end()) {
                candidates.push_back(c);
                ++extra;
            }
        }
        if (candidates.size() > options.max_probes)
            candidates.resize(options.max_probes);

        // The serial semantics — attach to the first candidate (in
        // probe order) within the threshold — survive
        // parallelization because the winner is selected by
        // candidate order, not by completion order.
        // Probes use the thresholded kernel: a probe's exact
        // distance above the threshold is irrelevant, so the kernel
        // abandons the text as soon as the bound is certified.
        // Placement decisions — and therefore the clustering — are
        // byte-identical to the exact-distance code.
        size_t placed_in = clusters.size();
        if (par::numThreads() > 1 &&
            candidates.size() >= kMinParallelProbes) {
            distances.assign(candidates.size(), 0);
            par::parallelFor(
                0, candidates.size(),
                [&](size_t k) {
                    distances[k] =
                        rep_patterns[candidates[k]].distanceBounded(
                            read, options.distance_threshold);
                },
                /*grain=*/4);
            comparisons += candidates.size();
            for (size_t k = 0; k < candidates.size(); ++k) {
                if (distances[k] <= options.distance_threshold) {
                    placed_in = candidates[k];
                    break;
                }
            }
        } else {
            for (size_t c : candidates) {
                ++comparisons;
                if (rep_patterns[c].distanceBounded(
                        read, options.distance_threshold) <=
                    options.distance_threshold) {
                    placed_in = c;
                    break;
                }
            }
        }

        if (placed_in == clusters.size()) {
            ReadCluster fresh;
            fresh.members.push_back(i);
            fresh.representative = read;
            clusters.push_back(std::move(fresh));
            rep_patterns.emplace_back(
                std::string_view(clusters.back().representative));
            auto bucket = buckets.find(anchor_of(read));
            if (bucket == buckets.end()) {
                bucket = buckets
                             .emplace(std::string(anchor_of(read)),
                                      std::vector<size_t>())
                             .first;
            }
            bucket->second.push_back(clusters.size() - 1);
            stat_created.inc();
        } else {
            clusters[placed_in].members.push_back(i);
            stat_merges.inc();
        }
    }
    stat_reads.add(reads.size());
    stat_comparisons.add(comparisons);
    return clusters;
}

ClusterPurity
scoreClustering(const std::vector<ReadCluster> &clusters,
                const std::vector<size_t> &origins)
{
    ClusterPurity purity;
    purity.num_clusters = clusters.size();
    for (const auto &cluster : clusters) {
        std::map<size_t, size_t> counts;
        for (size_t member : cluster.members) {
            DNASIM_ASSERT(member < origins.size(),
                          "read index out of range");
            ++counts[origins[member]];
        }
        size_t majority_origin = 0;
        size_t best = 0;
        for (const auto &[origin, count] : counts) {
            if (count > best) {
                best = count;
                majority_origin = origin;
            }
        }
        for (size_t member : cluster.members) {
            ++purity.num_reads;
            if (origins[member] == majority_origin)
                ++purity.correctly_clustered;
        }
    }
    return purity;
}

} // namespace dnasim
