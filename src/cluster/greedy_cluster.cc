#include "cluster/greedy_cluster.hh"

#include <algorithm>
#include <string_view>
#include <unordered_map>

#include "align/edit_distance.hh"
#include "base/logging.hh"
#include "obs/progress.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "par/thread_pool.hh"

namespace dnasim
{

namespace
{

/**
 * Transparent hash so the anchor buckets can be probed with a
 * string_view into the read — the hot path used to build one
 * std::string key per probe, a per-read allocation.
 */
struct AnchorHash
{
    using is_transparent = void;

    size_t
    operator()(std::string_view s) const
    {
        return std::hash<std::string_view>{}(s);
    }
};

} // anonymous namespace

std::vector<ReadCluster>
clusterReads(const std::vector<Strand> &reads,
             const ClusterOptions &options)
{
    DNASIM_ASSERT(options.anchor_length > 0, "zero anchor length");

    auto &reg = obs::Registry::global();
    static obs::Counter &stat_reads = reg.counter(
        "cluster.reads", "reads processed by greedy clustering");
    static obs::Counter &stat_comparisons = reg.counter(
        "cluster.comparisons",
        "read-to-representative edit-distance comparisons");
    static obs::Counter &stat_merges = reg.counter(
        "cluster.merges", "reads merged into an existing cluster");
    static obs::Counter &stat_created = reg.counter(
        "cluster.created", "fresh clusters opened");
    static obs::Timer &stat_time =
        reg.timer("cluster.time", "wall time in clusterReads()");
    static obs::Counter &stat_sk_bands = reg.counter(
        "cluster.sketch.bands_probed",
        "LSH band-bucket lookups by the sketch tier");
    static obs::Counter &stat_sk_collisions = reg.counter(
        "cluster.sketch.collisions",
        "cluster ids scanned in colliding band buckets");
    static obs::Counter &stat_sk_candidates = reg.counter(
        "cluster.sketch.candidates",
        "deduped sketch candidates emitted into probe lists");
    static obs::Counter &stat_sk_probes = reg.counter(
        "cluster.sketch.probes",
        "sketch candidates verified with the edit-distance gate");
    static obs::Counter &stat_sk_verified = reg.counter(
        "cluster.sketch.verified",
        "placements won by a sketch-tier candidate (probes minus "
        "verified over probes is the sketch false-positive rate)");
    static obs::Counter &stat_sk_empty = reg.counter(
        "cluster.sketch.empty_signatures",
        "reads with no sketchable k-mer (short or non-ACGT)");
    obs::ScopedTimer timer(stat_time);
    const bool use_sketch = options.index == ClusterIndexKind::Sketch;
    obs::ScopedTrace span(
        use_sketch ? "cluster.sketch" : "cluster.greedy", "cluster");
    uint64_t comparisons = 0;
    uint64_t sketch_probes = 0;
    uint64_t sketch_verified = 0;

    std::vector<ReadCluster> clusters;
    // One Myers pattern per cluster representative, built when the
    // cluster opens and reused for every later probe. Probing used
    // to call levenshtein(), which rebuilds the bit-vector match
    // tables from the representative on every one of the thousands
    // of probes against it; the cached pattern pays that cost once.
    std::vector<MyersPattern> rep_patterns;
    // anchor -> cluster indices whose representative starts with it.
    // string_view-keyed heterogeneous lookup: probing never copies
    // the anchor; only bucket creation materializes the key.
    std::unordered_map<std::string, std::vector<size_t>, AnchorHash,
                       std::equal_to<>>
        buckets;
    // Signatures for the whole pool up front (parallel, order
    // preserving); the band index itself fills in as clusters open.
    std::optional<SketchIndex> sketch;
    if (use_sketch)
        sketch.emplace(reads, options.sketch);

    auto anchor_of = [&](const Strand &s) -> std::string_view {
        return std::string_view(s).substr(
            0, std::min(options.anchor_length, s.size()));
    };

    std::vector<size_t> candidates;
    std::vector<size_t> sketch_candidates;
    std::vector<size_t> distances;
    // Epoch-stamped dedup across the probe tiers. The fallback tier
    // used to run std::find over the candidate list per scanned
    // cluster — O(candidates) each, quadratic across a probe window.
    EpochSeen seen;

    // Probe a candidate list in order; the first representative
    // within the threshold wins. Returns the winning position (or
    // the list size) and reports how many probes actually ran.
    // The serial semantics — attach to the first candidate in probe
    // order — survive parallelization because the winner is selected
    // by candidate order, not by completion order. Probes use the
    // thresholded kernel: a probe's exact distance above the
    // threshold is irrelevant, so the kernel abandons the text as
    // soon as the bound is certified. Placement decisions — and
    // therefore the clustering — are byte-identical to the
    // exact-distance code at any thread count.
    auto probe_list = [&](const std::vector<size_t> &cand,
                          const Strand &read,
                          size_t &probed) -> size_t {
        probed = cand.size();
        if (par::numThreads() > 1 &&
            cand.size() >= options.parallel_probe_min) {
            distances.assign(cand.size(), 0);
            par::parallelFor(
                0, cand.size(),
                [&](size_t k) {
                    distances[k] =
                        rep_patterns[cand[k]].distanceBounded(
                            read, options.distance_threshold);
                },
                /*grain=*/4);
            comparisons += cand.size();
            for (size_t k = 0; k < cand.size(); ++k)
                if (distances[k] <= options.distance_threshold)
                    return k;
            return cand.size();
        }
        for (size_t k = 0; k < cand.size(); ++k) {
            ++comparisons;
            if (rep_patterns[cand[k]].distanceBounded(
                    read, options.distance_threshold) <=
                options.distance_threshold) {
                probed = k + 1;
                return k;
            }
        }
        return cand.size();
    };

    obs::ProgressScope progress("cluster", reads.size());
    for (size_t i = 0; i < reads.size(); ++i) {
        const Strand &read = reads[i];
        progress.advance();

        // Tier 1: candidate clusters sharing the anchor prefix.
        seen.begin(clusters.size());
        candidates.clear();
        auto it = buckets.find(anchor_of(read));
        if (it != buckets.end()) {
            candidates = it->second;
            for (size_t c : candidates)
                seen.set(c);
        }
        if (!use_sketch) {
            // Greedy tier 2: the bounded newest-first scan over
            // existing clusters, dedup'd against the anchor tier by
            // the epoch marks (same probe order as the original
            // std::find implementation).
            size_t extra = 0;
            for (size_t c = clusters.size();
                 c-- > 0 && extra < options.max_probes;) {
                if (!seen.testAndSet(c)) {
                    candidates.push_back(c);
                    ++extra;
                }
            }
        }
        if (candidates.size() > options.max_probes)
            candidates.resize(options.max_probes);

        size_t probed = 0;
        size_t pos = probe_list(candidates, read, probed);
        size_t placed_in = pos < candidates.size() ? candidates[pos]
                                                   : clusters.size();

        // Sketch tier 2, only when the anchor tier rejected (the
        // common accept path never pays a band probe): MinHash band
        // collisions ranked by collision count then cluster id.
        if (use_sketch && placed_in == clusters.size()) {
            sketch_candidates.clear();
            sketch->appendCandidates(i, seen, options.max_probes,
                                     sketch_candidates);
            size_t sprobed = 0;
            size_t spos =
                probe_list(sketch_candidates, read, sprobed);
            sketch_probes += sprobed;
            if (spos < sketch_candidates.size()) {
                placed_in = sketch_candidates[spos];
                ++sketch_verified;
            }
        }

        if (placed_in == clusters.size()) {
            ReadCluster fresh;
            fresh.members.push_back(i);
            fresh.representative = read;
            clusters.push_back(std::move(fresh));
            rep_patterns.emplace_back(
                std::string_view(clusters.back().representative));
            auto bucket = buckets.find(anchor_of(read));
            if (bucket == buckets.end()) {
                bucket = buckets
                             .emplace(std::string(anchor_of(read)),
                                      std::vector<size_t>())
                             .first;
            }
            bucket->second.push_back(clusters.size() - 1);
            if (use_sketch)
                sketch->addCluster(i, clusters.size() - 1);
            stat_created.inc();
        } else {
            clusters[placed_in].members.push_back(i);
            stat_merges.inc();
        }
    }
    stat_reads.add(reads.size());
    stat_comparisons.add(comparisons);
    if (use_sketch) {
        const SketchCounters &sc = sketch->counters();
        stat_sk_bands.add(sc.bands_probed);
        stat_sk_collisions.add(sc.collisions);
        stat_sk_candidates.add(sc.candidates);
        stat_sk_probes.add(sketch_probes);
        stat_sk_verified.add(sketch_verified);
        stat_sk_empty.add(sc.empty_signatures);
    }
    return clusters;
}

ClusterPurity
scoreClustering(const std::vector<ReadCluster> &clusters,
                const std::vector<size_t> &origins)
{
    ClusterPurity purity;
    purity.num_clusters = clusters.size();
    // Majority counting over a sorted scratch of the cluster's
    // origins: the longest run wins, first (= smallest origin) on
    // ties — the exact semantics of the ordered std::map this
    // replaces, without a node allocation per distinct origin.
    std::vector<size_t> scratch;
    for (const auto &cluster : clusters) {
        scratch.clear();
        scratch.reserve(cluster.members.size());
        for (size_t member : cluster.members) {
            DNASIM_ASSERT(member < origins.size(),
                          "read index out of range");
            scratch.push_back(origins[member]);
        }
        std::sort(scratch.begin(), scratch.end());
        size_t majority_origin = 0;
        size_t best = 0;
        for (size_t lo = 0; lo < scratch.size();) {
            size_t hi = lo;
            while (hi < scratch.size() && scratch[hi] == scratch[lo])
                ++hi;
            if (hi - lo > best) {
                best = hi - lo;
                majority_origin = scratch[lo];
            }
            lo = hi;
        }
        for (size_t member : cluster.members) {
            ++purity.num_reads;
            if (origins[member] == majority_origin)
                ++purity.correctly_clustered;
        }
    }
    return purity;
}

} // namespace dnasim
