#include "cluster/greedy_cluster.hh"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "align/edit_distance.hh"
#include "base/logging.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

namespace dnasim
{

std::vector<ReadCluster>
clusterReads(const std::vector<Strand> &reads,
             const ClusterOptions &options)
{
    DNASIM_ASSERT(options.anchor_length > 0, "zero anchor length");

    auto &reg = obs::Registry::global();
    static obs::Counter &stat_reads = reg.counter(
        "cluster.reads", "reads processed by greedy clustering");
    static obs::Counter &stat_comparisons = reg.counter(
        "cluster.comparisons",
        "read-to-representative edit-distance comparisons");
    static obs::Counter &stat_merges = reg.counter(
        "cluster.merges", "reads merged into an existing cluster");
    static obs::Counter &stat_created = reg.counter(
        "cluster.created", "fresh clusters opened");
    static obs::Timer &stat_time =
        reg.timer("cluster.time", "wall time in clusterReads()");
    obs::ScopedTimer timer(stat_time);
    obs::ScopedTrace span("cluster.greedy", "cluster");
    uint64_t comparisons = 0;

    std::vector<ReadCluster> clusters;
    // anchor -> cluster indices whose representative starts with it.
    std::unordered_map<std::string, std::vector<size_t>> buckets;

    auto anchor_of = [&](const Strand &s) {
        return s.substr(0, std::min(options.anchor_length, s.size()));
    };

    for (size_t i = 0; i < reads.size(); ++i) {
        const Strand &read = reads[i];
        bool placed = false;

        // Probe candidate clusters sharing the anchor first, then
        // (bounded) recently created clusters as a fallback for
        // reads whose prefix was corrupted.
        std::vector<size_t> candidates;
        auto it = buckets.find(anchor_of(read));
        if (it != buckets.end())
            candidates = it->second;
        size_t extra = 0;
        for (size_t c = clusters.size(); c-- > 0 &&
                                         extra < options.max_probes;) {
            if (std::find(candidates.begin(), candidates.end(), c) ==
                candidates.end()) {
                candidates.push_back(c);
                ++extra;
            }
        }

        size_t probes = 0;
        for (size_t c : candidates) {
            if (probes++ >= options.max_probes)
                break;
            ++comparisons;
            if (levenshtein(clusters[c].representative, read) <=
                options.distance_threshold) {
                clusters[c].members.push_back(i);
                placed = true;
                break;
            }
        }

        if (!placed) {
            ReadCluster fresh;
            fresh.members.push_back(i);
            fresh.representative = read;
            clusters.push_back(std::move(fresh));
            buckets[anchor_of(read)].push_back(clusters.size() - 1);
            stat_created.inc();
        } else {
            stat_merges.inc();
        }
    }
    stat_reads.add(reads.size());
    stat_comparisons.add(comparisons);
    return clusters;
}

ClusterPurity
scoreClustering(const std::vector<ReadCluster> &clusters,
                const std::vector<size_t> &origins)
{
    ClusterPurity purity;
    purity.num_clusters = clusters.size();
    for (const auto &cluster : clusters) {
        std::map<size_t, size_t> counts;
        for (size_t member : cluster.members) {
            DNASIM_ASSERT(member < origins.size(),
                          "read index out of range");
            ++counts[origins[member]];
        }
        size_t majority_origin = 0;
        size_t best = 0;
        for (const auto &[origin, count] : counts) {
            if (count > best) {
                best = count;
                majority_origin = origin;
            }
        }
        for (size_t member : cluster.members) {
            ++purity.num_reads;
            if (origins[member] == majority_origin)
                ++purity.correctly_clustered;
        }
    }
    return purity;
}

} // namespace dnasim
