/**
 * @file
 * MinHash k-mer sketch index for sub-quadratic read clustering.
 *
 * The greedy clusterer's first probe tier — the anchor-prefix bucket
 * — only finds a read's cluster while the prefix survived the
 * channel. Its original fallback, a linear scan over the most
 * recently opened clusters, costs O(max_probes) edit-distance
 * kernels per read and stops finding anything once the true cluster
 * is older than the scan window, so clustering cost grows as reads x
 * probes while recall decays with pool size.
 *
 * The sketch index replaces that fallback with
 * clustering-by-signature (Rashtchian et al. [18] style): every read
 * gets a MinHash signature over its k-mers, the signature is cut
 * into bands (classic banded LSH), and each band key maps to the
 * clusters whose representative shares it. Candidate clusters are
 * then the band collisions of the read, ranked by collision count —
 * a near-constant number of targeted probes per read instead of a
 * blind scan, each still verified by the caller with the exact
 * edit-distance gate, so placements remain distance-gated and the
 * index can only *propose*, never mis-place.
 *
 * Two hot-path choices keep the index cheaper than the probes it
 * saves. Signatures use one-permutation MinHash: a single hash per
 * k-mer whose high bits pick the signature slot and whose remixed
 * value competes for that slot's minimum, with rotation
 * densification for empty slots — O(1) work per k-mer instead of one
 * multiply per hash function. Band buckets live in a single
 * open-addressed table (band index is folded into the key) with the
 * per-bucket cluster ids in a shared chained pool, so a probe is a
 * handful of flat-array touches instead of node-based map traffic.
 *
 * Determinism: signatures are a pure function of the read bytes and
 * the sketch seed. The per-read signature pass runs through the
 * order-preserving par layer (one output slot per read index), band
 * maps are only mutated by the serial placement loop, and candidate
 * ranking breaks ties by cluster id — so the clustering is
 * byte-identical at any --threads value.
 *
 * K-mers are extracted word-wise from the 2-bit packed form
 * (base/packed.hh forEachPackedKmer); the character strand is never
 * re-scanned.
 */

#ifndef DNASIM_CLUSTER_SKETCH_INDEX_HH
#define DNASIM_CLUSTER_SKETCH_INDEX_HH

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "base/dna.hh"
#include "base/strand_pool.hh"

namespace dnasim
{

/** Candidate-generation backend of the greedy clusterer. */
enum class ClusterIndexKind
{
    /// Anchor bucket + bounded recency scan (the original clusterer).
    Greedy,
    /// Anchor bucket + MinHash band collisions (sub-quadratic).
    Sketch,
};

/** "greedy"/"sketch" -> kind; nullopt for anything else. */
std::optional<ClusterIndexKind> parseClusterIndex(std::string_view name);

/** Canonical spelling of @p kind ("greedy" / "sketch"). */
const char *clusterIndexName(ClusterIndexKind kind);

/** MinHash / LSH parameters of the sketch index. */
struct SketchOptions
{
    /// K-mer length in bases (1..32; codes are 2k-bit packed words).
    size_t kmer_length = 10;
    /// Number of LSH bands; each band is one bucket lookup per read.
    size_t num_bands = 16;
    /// MinHash rows hashed into one band key. Higher = fewer false
    /// candidates, lower recall per band.
    size_t rows_per_band = 2;
    /// Seed of the MinHash hash family (part of the clustering's
    /// deterministic identity, not a run-time random value).
    uint64_t seed = 0x5ee'dc0de;
};

/**
 * Epoch-stamped membership marks over dense ids [0, n). Replaces a
 * per-item std::find / clear() with O(1) stamps: begin() opens a new
 * epoch, test()/set() compare-or-write the current epoch. Used by
 * the clusterer to dedup candidate ids across probe tiers without
 * rescanning the candidate list.
 */
class EpochSeen
{
  public:
    /** Start a fresh epoch covering ids [0, n). */
    void
    begin(size_t n)
    {
        if (stamp_.size() < n)
            stamp_.resize(n, 0);
        ++epoch_;
    }

    bool test(size_t id) const { return stamp_[id] == epoch_; }

    void set(size_t id) { stamp_[id] = epoch_; }

    /** True if already seen this epoch; marks it seen either way. */
    bool
    testAndSet(size_t id)
    {
        if (stamp_[id] == epoch_)
            return true;
        stamp_[id] = epoch_;
        return false;
    }

  private:
    std::vector<uint64_t> stamp_;
    uint64_t epoch_ = 0;
};

/** Probe-side event counts, flushed to cluster.sketch.* stats. */
struct SketchCounters
{
    uint64_t bands_probed = 0;  ///< band-bucket lookups
    uint64_t collisions = 0;    ///< cluster ids scanned in hit buckets
    uint64_t candidates = 0;    ///< deduped candidates emitted
    uint64_t empty_signatures = 0; ///< reads with no sketchable k-mer
};

/**
 * The per-pool sketch index: signatures for every read (built once,
 * in parallel), and band-keyed buckets over the clusters opened so
 * far. The placement loop interleaves addCluster() (a read became a
 * representative) with appendCandidates() (rank this read's band
 * collisions); both are serial-loop operations.
 */
class SketchIndex
{
  public:
    /**
     * Compute signatures for every read of @p reads. Parallel over
     * reads through the order-preserving par layer; byte-identical
     * results at any thread count.
     */
    SketchIndex(const std::vector<Strand> &reads,
                const SketchOptions &options);

    /**
     * Same, over reads [offset, offset + count) of a pool view —
     * the shard-building path of the out-of-core clusterer. Read
     * indices passed to the other members are *local* to the range
     * (0 .. count). Pool-backed views sketch straight from the
     * mmap'd packed words; the character form is never materialized.
     */
    SketchIndex(const StrandPoolView &view, size_t offset,
                size_t count, const SketchOptions &options);

    const SketchOptions &options() const { return opts_; }

    /** False for reads with no k-mer (short or non-ACGT content). */
    bool
    hasSignature(size_t read_index) const
    {
        return has_sig_[read_index] != 0;
    }

    /** Index read @p read_index as the representative of @p cluster_id.
     *  Ids must be dense and increasing (the clusterer's invariant). */
    void addCluster(size_t read_index, size_t cluster_id);

    /**
     * Append candidate cluster ids for @p read_index to @p out:
     * every indexed cluster sharing at least one band key, ranked by
     * (collision count desc, cluster id asc), skipping ids already
     * marked in @p seen (and marking emitted ones), until @p out
     * reaches @p max_total entries.
     */
    void appendCandidates(size_t read_index, EpochSeen &seen,
                          size_t max_total, std::vector<size_t> &out);

    const SketchCounters &counters() const { return counters_; }

  private:
    /// Compute the num_bands band keys of @p read into @p out.
    /// False (out untouched) if the read has no sketchable k-mer.
    bool signatureInto(std::string_view read, uint64_t *out) const;

    /// Same, from an already 2-bit packed strand of @p len bases.
    bool signatureFromWords(std::span<const uint64_t> words,
                            size_t len, uint64_t *out) const;

    /// Shared ctor body: validate options, sketch the range, size
    /// the bucket table.
    void build(const StrandPoolView &view, size_t offset,
               size_t count);

    /// Slot holding @p key, or the empty slot where it belongs.
    size_t findSlot(uint64_t key) const;
    /// Double the open-addressing table and rehash every key.
    void growTable();

    SketchOptions opts_;
    /// Per-read band keys, num_bands per read, flat; valid iff the
    /// read's has_sig_ flag is set.
    std::vector<uint64_t> flat_keys_;
    std::vector<uint8_t> has_sig_;

    /// Open-addressed bucket table over all bands (the band index is
    /// folded into the key, key 0 = empty slot). A slot heads a chain
    /// of cluster ids in the shared node pool below; key and head
    /// share a 16-byte slot so a band probe costs one cache line.
    struct Slot
    {
        uint64_t key = 0;
        uint32_t head = 0;
        uint32_t pad = 0;
    };
    std::vector<Slot> table_;
    size_t table_mask_ = 0;
    size_t table_used_ = 0;
    std::vector<uint32_t> node_id_;
    std::vector<uint32_t> node_next_;

    /// Collision-ranking scratch, epoch-stamped per appendCandidates.
    std::vector<uint32_t> hits_;
    std::vector<uint64_t> hit_epoch_;
    uint64_t probe_epoch_ = 0;
    std::vector<uint32_t> touched_;

    SketchCounters counters_;
};

} // namespace dnasim

#endif // DNASIM_CLUSTER_SKETCH_INDEX_HH
