/**
 * @file
 * Sharded out-of-core clustering over mmap-backed strand pools.
 *
 * The single-pass greedy clusterer keeps one MinHash signature per
 * read in RAM — 128 bytes per read at the default 16 bands, the
 * dominant memory term at millions of reads. The sharded driver
 * bounds that: the pool is cut into contiguous segments, each
 * segment is clustered independently (its signatures and sketch
 * table die with the segment), and the per-shard cluster-id spaces
 * are merged at the end by clustering the shard representatives —
 * the greedy clusterer reused as its own merge step — and unioning
 * each representative group into one final cluster. Peak RSS is one
 * shard's working set plus the cluster table, independent of pool
 * size.
 *
 * Determinism: every stage (per-shard clustering, representative
 * clustering, union + canonicalization) is thread-count-invariant,
 * so output is byte-identical at any --threads. The merged result is
 * additionally *canonical* — members sorted ascending, clusters
 * ordered by smallest member, the representative taken from the
 * constituent shard-cluster holding that smallest member — a form
 * the single-shard greedy output is already in, so on datasets whose
 * clusters the channel keeps within the distance threshold (every
 * test and CI config) the output is byte-identical across shard
 * counts too.
 */

#ifndef DNASIM_CLUSTER_SHARD_CLUSTER_HH
#define DNASIM_CLUSTER_SHARD_CLUSTER_HH

#include <vector>

#include "base/strand_pool.hh"
#include "cluster/greedy_cluster.hh"

namespace dnasim
{

/**
 * Cluster all reads of @p view in @p shards contiguous segments
 * (clamped to [1, view.size()]; 0 means 1). Cluster members are
 * global pool indices. With one shard this is exactly
 * clusterReadsRange() over the whole pool. A non-null
 * @p assignments receives one entry per read: shard-local tier /
 * distance / probe provenance with the cluster field remapped to
 * the merged cluster list.
 */
std::vector<ReadCluster>
clusterReadsSharded(const StrandPoolView &view,
                    const ClusterOptions &options, size_t shards,
                    std::vector<ReadAssignment> *assignments = nullptr);

} // namespace dnasim

#endif // DNASIM_CLUSTER_SHARD_CLUSTER_HH
