#include "cluster/shard_cluster.hh"

#include <algorithm>
#include <numeric>

#include "base/logging.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

namespace dnasim
{

std::vector<ReadCluster>
clusterReadsSharded(const StrandPoolView &view,
                    const ClusterOptions &options, size_t shards,
                    std::vector<ReadAssignment> *assignments)
{
    const size_t n = view.size();
    if (n == 0) {
        if (assignments != nullptr)
            assignments->clear();
        return {};
    }
    shards = std::clamp<size_t>(shards, 1, n);

    auto &reg = obs::Registry::global();
    static obs::Counter &stat_shards = reg.counter(
        "cluster.shard.passes", "per-shard clustering passes");
    static obs::Counter &stat_groups = reg.counter(
        "cluster.shard.groups",
        "shard-cluster groups unioned by the merge step");
    obs::ScopedTrace span("cluster.sharded", "cluster");

    // Phase 1: cluster each contiguous segment independently. The
    // shard loop is serial on purpose — one shard's signatures and
    // sketch table in RAM at a time (the inner passes still
    // parallelize over reads) — and members come back as global pool
    // indices, so concatenation needs no remapping.
    std::vector<ReadCluster> all;
    std::vector<ReadAssignment> local_assign;
    const size_t per_shard = (n + shards - 1) / shards;
    for (size_t s = 0; s < shards; ++s) {
        const size_t lo = s * per_shard;
        if (lo >= n)
            break;
        const size_t len = std::min(per_shard, n - lo);
        stat_shards.inc();
        std::vector<ReadCluster> part = clusterReadsRange(
            view, lo, len, options,
            assignments != nullptr ? &local_assign : nullptr);
        if (assignments != nullptr) {
            if (s == 0)
                assignments->assign(n, ReadAssignment{});
            const size_t base = all.size();
            for (size_t i = 0; i < len; ++i) {
                ReadAssignment a = local_assign[i];
                a.cluster += static_cast<uint32_t>(base);
                (*assignments)[lo + i] = a;
            }
        }
        all.insert(all.end(),
                   std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
    }

    // Phase 2: union the shard-cluster id spaces by clustering the
    // representatives with the same options — two shard clusters
    // merge exactly when a greedy probe would have joined their
    // representatives — then flatten each representative group into
    // one canonical cluster.
    std::vector<std::vector<size_t>> groups;
    if (shards == 1) {
        groups.resize(all.size());
        for (size_t j = 0; j < all.size(); ++j)
            groups[j] = {j};
    } else {
        obs::ScopedTrace merge_span("cluster.shard.merge", "cluster");
        std::vector<Strand> reps;
        reps.reserve(all.size());
        for (const ReadCluster &c : all)
            reps.push_back(c.representative);
        std::vector<ReadCluster> rep_clusters =
            clusterReads(reps, options);
        groups.reserve(rep_clusters.size());
        for (ReadCluster &rc : rep_clusters)
            groups.push_back(std::move(rc.members));
    }
    stat_groups.add(groups.size());

    // Canonical final form: within a group the representative comes
    // from the constituent holding the globally smallest member,
    // members are sorted ascending, and the cluster list is ordered
    // by smallest member. Single-shard greedy output is already in
    // this form (members and creation order both ascend with read
    // order), so canonicalization never perturbs the S=1 result.
    std::vector<ReadCluster> merged;
    merged.reserve(groups.size());
    std::vector<uint32_t> all_to_merged(all.size(), 0);
    for (const std::vector<size_t> &group : groups) {
        ReadCluster out;
        size_t best_min = SIZE_MAX;
        size_t best_j = group.front();
        for (size_t j : group) {
            DNASIM_ASSERT(!all[j].members.empty(),
                          "empty shard cluster");
            out.members.insert(out.members.end(),
                               all[j].members.begin(),
                               all[j].members.end());
            if (all[j].members.front() < best_min) {
                best_min = all[j].members.front();
                best_j = j;
            }
        }
        std::sort(out.members.begin(), out.members.end());
        out.representative = std::move(all[best_j].representative);
        merged.push_back(std::move(out));
        for (size_t j : group)
            all_to_merged[j] =
                static_cast<uint32_t>(merged.size() - 1);
    }

    std::vector<size_t> order(merged.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return merged[a].members.front() < merged[b].members.front();
    });
    std::vector<uint32_t> rank(merged.size(), 0);
    std::vector<ReadCluster> final_clusters;
    final_clusters.reserve(merged.size());
    for (size_t r = 0; r < order.size(); ++r) {
        rank[order[r]] = static_cast<uint32_t>(r);
        final_clusters.push_back(std::move(merged[order[r]]));
    }

    if (assignments != nullptr) {
        for (ReadAssignment &a : *assignments)
            a.cluster = rank[all_to_merged[a.cluster]];
    }
    return final_clusters;
}

} // namespace dnasim
