#include "cluster/sketch_index.hh"

#include <algorithm>
#include <array>

#include "base/logging.hh"
#include "base/packed.hh"
#include "obs/trace.hh"
#include "par/thread_pool.hh"

namespace dnasim
{

namespace
{

/** splitmix64 finalizer: the k-mer hash and the densification mix. */
inline uint64_t
mix64(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/**
 * Signature-width cap: num_bands * rows_per_band one-permutation
 * slots are tracked in a stack array of this size.
 */
constexpr size_t kMaxHashes = 64;

/** Chain terminator in the cluster-id node pool. */
constexpr uint32_t kNoNode = 0xffffffffu;

} // anonymous namespace

std::optional<ClusterIndexKind>
parseClusterIndex(std::string_view name)
{
    if (name == "greedy")
        return ClusterIndexKind::Greedy;
    if (name == "sketch")
        return ClusterIndexKind::Sketch;
    return std::nullopt;
}

const char *
clusterIndexName(ClusterIndexKind kind)
{
    return kind == ClusterIndexKind::Greedy ? "greedy" : "sketch";
}

SketchIndex::SketchIndex(const std::vector<Strand> &reads,
                         const SketchOptions &options)
    : opts_(options)
{
    build(StrandPoolView(reads), 0, reads.size());
}

SketchIndex::SketchIndex(const StrandPoolView &view, size_t offset,
                         size_t count, const SketchOptions &options)
    : opts_(options)
{
    build(view, offset, count);
}

void
SketchIndex::build(const StrandPoolView &view, size_t offset,
                   size_t count)
{
    DNASIM_ASSERT(opts_.kmer_length >= 1 &&
                      opts_.kmer_length <= PackedStrand::kBasesPerWord,
                  "sketch k-mer length out of [1, 32]");
    DNASIM_ASSERT(opts_.num_bands >= 1 && opts_.rows_per_band >= 1,
                  "sketch needs at least one band and one row");
    DNASIM_ASSERT(opts_.num_bands * opts_.rows_per_band <= kMaxHashes,
                  "sketch signature wider than ", kMaxHashes);
    DNASIM_ASSERT(offset + count <= view.size(),
                  "sketch range out of pool bounds");

    {
        obs::ScopedTrace span("cluster.sketch.signatures", "cluster");
        // Per-read signatures through the order-preserving par
        // layer: every read writes its own index-determined slots of
        // the flat key array, so the result is byte-identical at any
        // thread count and the probe loop later touches one
        // contiguous stretch per read instead of a heap vector per
        // signature. Pool-backed views hand the mmap'd packed words
        // to the sketcher directly; vector-backed reads pack into a
        // reused per-thread arena first.
        flat_keys_.assign(count * opts_.num_bands, 0);
        has_sig_.assign(count, 0);
        par::parallelFor(
            0, count,
            [&](size_t i) {
                thread_local std::vector<uint64_t> scratch;
                std::span<const uint64_t> words;
                size_t len = 0;
                if (view.packed(offset + i, scratch, words, len) &&
                    signatureFromWords(words, len,
                                       flat_keys_.data() +
                                           i * opts_.num_bands))
                    has_sig_[i] = 1;
            },
            /*grain=*/16);
        for (size_t i = 0; i < count; ++i)
            if (!has_sig_[i])
                ++counters_.empty_signatures;
    }

    // Start the bucket table at a modest power of two; it doubles as
    // clusters are indexed.
    table_.assign(1024, Slot{0, kNoNode, 0});
    table_mask_ = table_.size() - 1;
}

bool
SketchIndex::signatureInto(std::string_view read, uint64_t *out) const
{
    // Pack into a reused per-thread arena; a non-ACGT read (none in
    // simulator output, possible in external pools) simply goes
    // unsketched and relies on the anchor tier.
    thread_local std::vector<uint64_t> words;
    size_t len = 0;
    if (!packWordsInto(read, read.size(), words, &len))
        return false;
    return signatureFromWords({words.data(),
                               PackedStrand::numWords(len)},
                              len, out);
}

bool
SketchIndex::signatureFromWords(std::span<const uint64_t> words,
                                size_t len, uint64_t *out) const
{
    if (len < opts_.kmer_length)
        return false;

    // One-permutation MinHash: one hash g per k-mer; its high bits
    // (multiplicative range reduction) pick the slot, a remix of g —
    // decorrelated from the slot-selecting bits — competes for the
    // slot minimum. O(1) per k-mer where classic MinHash pays one
    // multiply per hash function.
    const size_t slots = opts_.num_bands * opts_.rows_per_band;
    std::array<uint64_t, kMaxHashes> minh;
    minh.fill(~uint64_t{0});
    forEachPackedKmer(
        words, len, opts_.kmer_length, [&](uint64_t code) {
            const uint64_t g = mix64(code + opts_.seed);
            const size_t slot = static_cast<size_t>(
                (static_cast<unsigned __int128>(g) * slots) >> 64);
            const uint64_t v = mix64(g);
            if (v < minh[slot])
                minh[slot] = v;
        });

    // Rotation densification: an empty slot borrows the value of the
    // next occupied slot (cyclically), remixed with its own index so
    // two reads only agree on a borrowed slot when they agree on the
    // source minimum and the rotation distance.
    std::array<bool, kMaxHashes> occupied;
    for (size_t j = 0; j < slots; ++j)
        occupied[j] = minh[j] != ~uint64_t{0};
    for (size_t j = 0; j < slots; ++j) {
        if (occupied[j])
            continue;
        for (size_t t = 1; t < slots; ++t) {
            const size_t src = (j + t) % slots;
            if (occupied[src]) {
                minh[j] = mix64(minh[src] +
                                0x9e3779b97f4a7c15ULL * (j + 1));
                break;
            }
        }
    }

    // Fold each band's rows into one 64-bit band key; the band index
    // seeds the fold so the same rows in different bands cannot
    // alias, letting all bands share one bucket table. Key 0 is the
    // table's empty sentinel — remap the (1 in 2^64) collision.
    for (size_t b = 0; b < opts_.num_bands; ++b) {
        uint64_t key = 0x100001b3u + b;
        for (size_t r = 0; r < opts_.rows_per_band; ++r)
            key = mix64(key ^ minh[b * opts_.rows_per_band + r]);
        out[b] = key == 0 ? 1 : key;
    }
    return true;
}

size_t
SketchIndex::findSlot(uint64_t key) const
{
    size_t slot = static_cast<size_t>(key) & table_mask_;
    while (table_[slot].key != 0 && table_[slot].key != key)
        slot = (slot + 1) & table_mask_;
    return slot;
}

void
SketchIndex::growTable()
{
    std::vector<Slot> old = std::move(table_);
    table_.assign(old.size() * 2, Slot{0, kNoNode, 0});
    table_mask_ = table_.size() - 1;
    for (const Slot &s : old) {
        if (s.key == 0)
            continue;
        table_[findSlot(s.key)] = s;
    }
}

void
SketchIndex::addCluster(size_t read_index, size_t cluster_id)
{
    if (hits_.size() <= cluster_id) {
        hits_.resize(cluster_id + 1, 0);
        hit_epoch_.resize(cluster_id + 1, 0);
    }
    if (!has_sig_[read_index])
        return;
    const uint64_t *keys =
        flat_keys_.data() + read_index * opts_.num_bands;
    // The per-band slots are independent random accesses into a
    // table much larger than cache; issuing them all up front
    // overlaps the misses instead of serializing them.
    for (size_t b = 0; b < opts_.num_bands; ++b)
        __builtin_prefetch(
            &table_[static_cast<size_t>(keys[b]) & table_mask_]);
    for (size_t b = 0; b < opts_.num_bands; ++b) {
        size_t slot = findSlot(keys[b]);
        if (table_[slot].key == 0) {
            table_[slot].key = keys[b];
            table_[slot].head = kNoNode;
            ++table_used_;
            if (table_used_ * 3 > table_.size() * 2) {
                growTable();
                slot = findSlot(keys[b]);
            }
        }
        node_id_.push_back(static_cast<uint32_t>(cluster_id));
        node_next_.push_back(table_[slot].head);
        table_[slot].head = static_cast<uint32_t>(node_id_.size() - 1);
    }
}

void
SketchIndex::appendCandidates(size_t read_index, EpochSeen &seen,
                              size_t max_total,
                              std::vector<size_t> &out)
{
    if (!has_sig_[read_index] || out.size() >= max_total)
        return;
    const uint64_t *keys =
        flat_keys_.data() + read_index * opts_.num_bands;

    ++probe_epoch_;
    touched_.clear();
    // Overlap the independent per-band table misses (see
    // addCluster); the chain walks behind them are usually empty.
    for (size_t b = 0; b < opts_.num_bands; ++b)
        __builtin_prefetch(
            &table_[static_cast<size_t>(keys[b]) & table_mask_]);
    for (size_t b = 0; b < opts_.num_bands; ++b) {
        ++counters_.bands_probed;
        const size_t slot = findSlot(keys[b]);
        if (table_[slot].key == 0)
            continue;
        for (uint32_t n = table_[slot].head; n != kNoNode;
             n = node_next_[n]) {
            const uint32_t id = node_id_[n];
            ++counters_.collisions;
            if (hit_epoch_[id] != probe_epoch_) {
                hit_epoch_[id] = probe_epoch_;
                hits_[id] = 1;
                touched_.push_back(id);
            } else {
                ++hits_[id];
            }
        }
    }

    // Rank by collision count, ties to the older cluster: a stable,
    // thread-independent order (greedy semantics pick the first
    // accepted candidate, so the order *is* the clustering).
    std::sort(touched_.begin(), touched_.end(),
              [&](uint32_t a, uint32_t b) {
                  if (hits_[a] != hits_[b])
                      return hits_[a] > hits_[b];
                  return a < b;
              });
    for (uint32_t id : touched_) {
        if (out.size() >= max_total)
            break;
        if (seen.testAndSet(id))
            continue;
        out.push_back(id);
        ++counters_.candidates;
    }
}

} // namespace dnasim
