/**
 * @file
 * Clustering of an unordered read pool (section 1.1.2).
 *
 * The simulator's output is perfectly clustered ("pseudo-clustering"
 * in section 3.1). To emulate a real pipeline, the reads can be
 * shuffled into an unordered pool and re-clustered by edit-distance
 * similarity. The implementation is a greedy index-based clusterer
 * in the spirit of Rashtchian et al. [18]: candidate clusters come
 * from a two-tier index — a prefix-anchor bucket, then either
 * MinHash band collisions (ClusterIndexKind::Sketch, the default;
 * see sketch_index.hh) or a bounded recency scan
 * (ClusterIndexKind::Greedy) — and a read attaches to the first
 * candidate whose representative is within a distance threshold.
 */

#ifndef DNASIM_CLUSTER_GREEDY_CLUSTER_HH
#define DNASIM_CLUSTER_GREEDY_CLUSTER_HH

#include <vector>

#include "base/dna.hh"
#include "base/rng.hh"
#include "base/strand_pool.hh"
#include "cluster/sketch_index.hh"

namespace dnasim
{

/** Options for the greedy clusterer. */
struct ClusterOptions
{
    /// Reads within this edit distance of a cluster representative
    /// join the cluster.
    size_t distance_threshold = 10;
    /// Length of the prefix anchor used for candidate bucketing.
    size_t anchor_length = 12;
    /// Maximum clusters probed per read before opening a new one.
    size_t max_probes = 24;
    /// Candidate lists at least this long fan their distance probes
    /// out through the par layer. Per-read fork/join costs far more
    /// than a thresholded probe against a ~110-base representative
    /// (the kernel early-abandons in well under a microsecond), so
    /// the default keeps realistic configs on the serial fast path;
    /// lower it when probes are genuinely expensive (long reads,
    /// wide thresholds). Placements are byte-identical either way —
    /// the winner is picked by candidate order, not completion
    /// order.
    size_t parallel_probe_min = 1024;
    /// Second-tier candidate generator behind the anchor bucket:
    /// Sketch ranks MinHash band collisions (near-constant targeted
    /// probes per read); Greedy scans recently opened clusters (the
    /// original reads x probes fallback). Surfaced on the CLI and
    /// bench binaries as --cluster-index={greedy,sketch}.
    ClusterIndexKind index = ClusterIndexKind::Sketch;
    /// MinHash/LSH parameters of the sketch tier.
    SketchOptions sketch;
};

/** A cluster of reads (indices into the input pool). */
struct ReadCluster
{
    std::vector<size_t> members;
    Strand representative;
};

/** Which candidate tier placed a read (assignment provenance). */
enum class AssignmentTier : uint8_t
{
    Fresh,  ///< no candidate accepted; the read opened a new cluster
    Anchor, ///< admitted by a prefix-anchor bucket candidate
    Sketch, ///< admitted by a MinHash band-collision candidate
    Greedy, ///< admitted by the bounded recency-scan fallback
};

/** Short stable name ("fresh", "anchor", "sketch", "greedy"). */
const char *assignmentTierName(AssignmentTier tier);

/**
 * Per-read placement provenance emitted by clusterReads: which tier
 * admitted the read, the exact verified distance to the winning
 * representative, and how many contending candidates were verified
 * before the decision. Joined against ground-truth origins by the
 * lineage attribution engine (src/analysis/lineage.hh) to explain
 * *how* a misclustered read got in.
 */
struct ReadAssignment
{
    uint32_t cluster = 0; ///< index into the returned cluster list
    AssignmentTier tier = AssignmentTier::Fresh;
    /// Exact edit distance to the admitting representative (the
    /// bounded kernel reports exact values at or below the
    /// threshold); 0 for Fresh placements.
    uint32_t verified_distance = 0;
    /// Candidates dispatched for verification across both tiers
    /// before the decision (whole probe chunks).
    uint32_t candidates_probed = 0;
};

/**
 * Greedily cluster @p reads. Deterministic for a fixed input order;
 * shuffle the pool first for order-independence experiments.
 *
 * A non-null @p assignments receives one ReadAssignment per read
 * (indexed like @p reads). Capturing provenance never changes probe
 * order or placement — the clustering is identical either way.
 */
std::vector<ReadCluster>
clusterReads(const std::vector<Strand> &reads,
             const ClusterOptions &options = {},
             std::vector<ReadAssignment> *assignments = nullptr);

/**
 * Cluster reads [offset, offset + count) of a pool view — the
 * building block of the sharded out-of-core clusterer
 * (cluster/shard_cluster.hh). Cluster members are *global* pool
 * indices (offset + local position); a non-null @p assignments
 * receives count entries indexed by local position. For a
 * vector-backed view with offset 0 this is exactly clusterReads()
 * — same probe order, same placements, byte-identical clusters.
 */
std::vector<ReadCluster>
clusterReadsRange(const StrandPoolView &view, size_t offset,
                  size_t count, const ClusterOptions &options = {},
                  std::vector<ReadAssignment> *assignments = nullptr);

/**
 * Purity metrics of a clustering against ground truth: each read
 * carries the index of its true origin; a cluster's label is its
 * majority origin.
 */
struct ClusterPurity
{
    size_t num_clusters = 0;
    size_t num_reads = 0;
    /// Reads assigned to a cluster whose majority origin matches the
    /// read's origin.
    size_t correctly_clustered = 0;

    double
    purity() const
    {
        return num_reads == 0
                   ? 0.0
                   : static_cast<double>(correctly_clustered) /
                         static_cast<double>(num_reads);
    }
};

/** Score @p clusters given @p origins (true origin of each read). */
ClusterPurity scoreClustering(const std::vector<ReadCluster> &clusters,
                              const std::vector<size_t> &origins);

} // namespace dnasim

#endif // DNASIM_CLUSTER_GREEDY_CLUSTER_HH
