#include "pipeline/archival_pipeline.hh"

#include <algorithm>
#include <map>

#include "base/logging.hh"
#include "codec/reed_solomon.hh"
#include "obs/progress.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

namespace dnasim
{

namespace
{

struct PipelineStats
{
    obs::Counter &frames_encoded;
    obs::Counter &strands_encoded;
    obs::Counter &clusters_retrieved;
    obs::Counter &erasures;
    obs::Counter &undecodable;
    obs::Counter &crc_failures;
    obs::Counter &frames_recovered;
    obs::Counter &stripes_failed;
    obs::Timer &store_time;
    obs::Timer &retrieve_time;

    static PipelineStats &
    get()
    {
        auto &reg = obs::Registry::global();
        static PipelineStats ps{
            reg.counter("pipeline.frames_encoded",
                        "frames (data + parity) encoded by store()"),
            reg.counter("pipeline.strands_encoded",
                        "DNA strands emitted by store()"),
            reg.counter("pipeline.clusters_retrieved",
                        "clusters processed by retrieve()"),
            reg.counter("pipeline.erasure_clusters",
                        "clusters lost entirely in the channel"),
            reg.counter("pipeline.undecodable_strands",
                        "reconstructed strands the codec rejected"),
            reg.counter("pipeline.crc_failures",
                        "frames dropped by CRC/unpack checks"),
            reg.counter("pipeline.frames_recovered",
                        "frames rebuilt from logical redundancy"),
            reg.counter("pipeline.rs_decode_failures",
                        "redundancy stripes that failed to decode"),
            reg.timer("pipeline.store_time",
                      "wall time in ArchivalPipeline::store"),
            reg.timer("pipeline.retrieve_time",
                      "wall time in ArchivalPipeline::retrieve"),
        };
        return ps;
    }
};

} // anonymous namespace

ArchivalPipeline::ArchivalPipeline(PipelineConfig config)
    : config_(config),
      frame_codec_(config.payload_bytes, config.index_bytes)
{
    if (config_.redundancy == RedundancyScheme::ReedSolomon) {
        DNASIM_ASSERT(config_.rs_stripe_data > 0 &&
                          config_.rs_parity > 0,
                      "bad RS stripe configuration");
        DNASIM_ASSERT(config_.rs_stripe_data + config_.rs_parity <= 255,
                      "RS stripe exceeds 255 symbols");
    }
    if (config_.redundancy == RedundancyScheme::XorGroups)
        DNASIM_ASSERT(config_.xor_group > 0, "bad XOR group size");
}

const DnaCodec &
ArchivalPipeline::codec() const
{
    if (config_.rotating_codec)
        return rotating_;
    return trivial_;
}

size_t
ArchivalPipeline::strandLength() const
{
    return codec().encodedLength(frame_codec_.frameBytes());
}

StoredObject
ArchivalPipeline::store(const Bytes &file) const
{
    PipelineStats &ps = PipelineStats::get();
    obs::ScopedTimer timer(ps.store_time);
    obs::ScopedTrace span("pipeline.store", "pipeline");

    StoredObject object;
    object.file_size = file.size();

    std::vector<Frame> frames = frame_codec_.split(file);
    object.num_data_frames = frames.size();
    const size_t d = frames.size();
    const size_t payload = config_.payload_bytes;

    switch (config_.redundancy) {
      case RedundancyScheme::None:
        break;

      case RedundancyScheme::XorGroups: {
        const size_t g = config_.xor_group;
        const size_t groups = (d + g - 1) / g;
        for (size_t grp = 0; grp < groups; ++grp) {
            Frame parity;
            parity.index = static_cast<uint32_t>(d + grp);
            parity.payload.assign(payload, 0);
            for (size_t i = grp * g; i < std::min(d, (grp + 1) * g);
                 ++i) {
                for (size_t b = 0; b < payload; ++b)
                    parity.payload[b] ^= frames[i].payload[b];
            }
            frames.push_back(std::move(parity));
        }
        break;
      }

      case RedundancyScheme::ReedSolomon: {
        const size_t k = config_.rs_stripe_data;
        const size_t stripes = (d + k - 1) / k;
        ReedSolomon rs(config_.rs_parity);
        for (size_t stripe = 0; stripe < stripes; ++stripe) {
            // Parity frames for this stripe, filled column-wise.
            std::vector<Frame> parity(config_.rs_parity);
            for (size_t p = 0; p < parity.size(); ++p) {
                parity[p].index = static_cast<uint32_t>(
                    d + stripe * config_.rs_parity + p);
                parity[p].payload.assign(payload, 0);
            }
            for (size_t b = 0; b < payload; ++b) {
                std::vector<uint8_t> column(k, 0);
                for (size_t i = 0; i < k; ++i) {
                    size_t frame_idx = stripe * k + i;
                    if (frame_idx < d)
                        column[i] = frames[frame_idx].payload[b];
                }
                auto codeword = rs.encode(column);
                for (size_t p = 0; p < config_.rs_parity; ++p)
                    parity[p].payload[b] = codeword[k + p];
            }
            for (auto &f : parity)
                frames.push_back(std::move(f));
        }
        break;
      }
    }

    object.num_total_frames = frames.size();
    object.strands.reserve(frames.size());
    for (const auto &f : frames)
        object.strands.push_back(codec().encode(frame_codec_.pack(f)));
    ps.frames_encoded.add(frames.size());
    ps.strands_encoded.add(object.strands.size());
    return object;
}

RetrievedObject
ArchivalPipeline::retrieve(const Dataset &clusters,
                           const Reconstructor &algo,
                           const StoredObject &object, Rng &rng) const
{
    PipelineStats &ps = PipelineStats::get();
    obs::ScopedTimer timer(ps.retrieve_time);
    obs::ScopedTrace span("pipeline.retrieve", "pipeline");

    RetrievedObject result;
    auto &stats = result.stats;
    stats.clusters = clusters.size();
    ps.clusters_retrieved.add(clusters.size());

    const size_t d = object.num_data_frames;
    const size_t total = object.num_total_frames;
    const size_t payload = config_.payload_bytes;

    // Reconstruct and parse every cluster into frames by index.
    std::map<uint32_t, Frame> received;
    const size_t design_len = strandLength();
    obs::ProgressScope progress("retrieve", clusters.size());
    for (size_t i = 0; i < clusters.size(); ++i) {
        progress.advance();
        if (clusters[i].isErasure()) {
            ++stats.erasure_clusters;
            ps.erasures.inc();
            continue;
        }
        Rng cluster_rng = rng.fork(i);
        Strand estimate = algo.reconstruct(clusters[i].copies,
                                           design_len, cluster_rng);
        auto raw = codec().decode(estimate,
                                  frame_codec_.frameBytes());
        if (!raw) {
            ++stats.undecodable_strands;
            ps.undecodable.inc();
            continue;
        }
        auto frame = frame_codec_.unpack(*raw);
        if (!frame) {
            ++stats.crc_failures;
            ps.crc_failures.inc();
            continue;
        }
        if (frame->index < total)
            received.emplace(frame->index, std::move(*frame));
    }

    auto have = [&](size_t idx) {
        return received.find(static_cast<uint32_t>(idx)) !=
               received.end();
    };
    auto payload_of = [&](size_t idx) -> const Bytes & {
        return received.at(static_cast<uint32_t>(idx)).payload;
    };

    // Logical-redundancy recovery.
    switch (config_.redundancy) {
      case RedundancyScheme::None:
        break;

      case RedundancyScheme::XorGroups: {
        const size_t g = config_.xor_group;
        const size_t groups = (d + g - 1) / g;
        for (size_t grp = 0; grp < groups; ++grp) {
            size_t lo = grp * g;
            size_t hi = std::min(d, lo + g);
            size_t parity_idx = d + grp;
            std::vector<size_t> missing;
            for (size_t i = lo; i < hi; ++i)
                if (!have(i))
                    missing.push_back(i);
            if (missing.empty())
                continue;
            if (missing.size() > 1 || !have(parity_idx)) {
                ++stats.stripes_failed;
                ps.stripes_failed.inc();
                continue;
            }
            Frame rebuilt;
            rebuilt.index = static_cast<uint32_t>(missing[0]);
            rebuilt.payload = payload_of(parity_idx);
            for (size_t i = lo; i < hi; ++i) {
                if (i == missing[0])
                    continue;
                for (size_t b = 0; b < payload; ++b)
                    rebuilt.payload[b] ^= payload_of(i)[b];
            }
            received.emplace(rebuilt.index, std::move(rebuilt));
            ++stats.frames_recovered;
            ps.frames_recovered.inc();
        }
        break;
      }

      case RedundancyScheme::ReedSolomon: {
        const size_t k = config_.rs_stripe_data;
        const size_t stripes = (d + k - 1) / k;
        ReedSolomon rs(config_.rs_parity);
        for (size_t stripe = 0; stripe < stripes; ++stripe) {
            // Which stripe slots are missing? Virtual zero-padding
            // frames past d count as present.
            std::vector<size_t> erasures;
            bool any_data_missing = false;
            for (size_t i = 0; i < k; ++i) {
                size_t frame_idx = stripe * k + i;
                if (frame_idx < d && !have(frame_idx)) {
                    erasures.push_back(i);
                    any_data_missing = true;
                }
            }
            for (size_t p = 0; p < config_.rs_parity; ++p) {
                size_t frame_idx = d + stripe * config_.rs_parity + p;
                if (!have(frame_idx))
                    erasures.push_back(k + p);
            }
            if (!any_data_missing)
                continue;
            if (erasures.size() > config_.rs_parity) {
                ++stats.stripes_failed;
                ps.stripes_failed.inc();
                continue;
            }

            // Rebuild the missing data frames column by column.
            std::vector<Frame> rebuilt;
            for (size_t i = 0; i < k; ++i) {
                size_t frame_idx = stripe * k + i;
                if (frame_idx < d && !have(frame_idx)) {
                    Frame f;
                    f.index = static_cast<uint32_t>(frame_idx);
                    f.payload.assign(payload, 0);
                    rebuilt.push_back(std::move(f));
                }
            }
            bool stripe_ok = true;
            for (size_t b = 0; b < payload && stripe_ok; ++b) {
                std::vector<uint8_t> codeword(k + config_.rs_parity,
                                              0);
                for (size_t i = 0; i < k; ++i) {
                    size_t frame_idx = stripe * k + i;
                    if (frame_idx < d && have(frame_idx))
                        codeword[i] = payload_of(frame_idx)[b];
                }
                for (size_t p = 0; p < config_.rs_parity; ++p) {
                    size_t frame_idx =
                        d + stripe * config_.rs_parity + p;
                    if (have(frame_idx))
                        codeword[k + p] = payload_of(frame_idx)[b];
                }
                auto decoded = rs.decode(codeword, erasures);
                if (!decoded) {
                    stripe_ok = false;
                    break;
                }
                size_t r = 0;
                for (size_t i = 0; i < k; ++i) {
                    size_t frame_idx = stripe * k + i;
                    if (frame_idx < d && !have(frame_idx))
                        rebuilt[r++].payload[b] = (*decoded)[i];
                }
            }
            if (!stripe_ok) {
                ++stats.stripes_failed;
                ps.stripes_failed.inc();
                continue;
            }
            for (auto &f : rebuilt) {
                ++stats.frames_recovered;
                ps.frames_recovered.inc();
                received.emplace(f.index, std::move(f));
            }
        }
        break;
      }
    }

    // Reassemble the data frames.
    std::vector<Frame> data_frames;
    data_frames.reserve(d);
    bool all_present = true;
    for (size_t i = 0; i < d; ++i) {
        auto it = received.find(static_cast<uint32_t>(i));
        if (it == received.end()) {
            all_present = false;
            continue;
        }
        data_frames.push_back(it->second);
    }
    std::vector<uint32_t> missing;
    Bytes stream = frame_codec_.reassemble(data_frames, d, &missing);
    stream.resize(object.file_size);
    result.data = std::move(stream);
    result.success = all_present && missing.empty();
    return result;
}

RetrievedObject
ArchivalPipeline::roundTrip(const Bytes &file, const ErrorModel &model,
                            const CoverageModel &coverage,
                            const Reconstructor &algo, Rng &rng,
                            LineageLog *lineage,
                            Dataset *simulated) const
{
    StoredObject object = store(file);
    ChannelSimulator sim(model);
    Rng channel_rng = rng.fork(0xc4a);
    Dataset clusters =
        sim.simulate(object.strands, coverage, channel_rng, lineage);
    if (config_.max_reads > 0)
        clusters.truncateReads(config_.max_reads);
    if (simulated != nullptr)
        *simulated = clusters;
    if (config_.recluster) {
        // Throw away the simulator's pseudo-clustering: pool the
        // reads, shuffle them into wetlab order, and re-group them by
        // edit-distance similarity. Retrieval does not need the true
        // origins — frames carry their own indices — so imperfect
        // clusters only cost decode attempts, not correctness.
        obs::ScopedTrace cluster_span("pipeline.recluster", "pipeline");
        std::vector<Strand> pool = clusters.pooledReads();
        Rng shuffle_rng = rng.fork(0x5eed);
        shuffle_rng.shuffle(pool);
        std::vector<ReadCluster> regrouped =
            clusterReads(pool, config_.cluster);
        std::vector<Cluster> rebuilt;
        rebuilt.reserve(regrouped.size());
        for (auto &rc : regrouped) {
            Cluster c;
            c.reference = std::move(rc.representative);
            c.copies.reserve(rc.members.size());
            for (size_t m : rc.members)
                c.copies.push_back(pool[m]);
            rebuilt.push_back(std::move(c));
        }
        clusters = Dataset(std::move(rebuilt));
    }
    Rng decode_rng = rng.fork(0xdec0de);
    return retrieve(clusters, algo, object, decode_rng);
}

} // namespace dnasim
