/**
 * @file
 * The end-to-end archival pipeline of section 1.1: encode a byte
 * stream into addressable strands with logical redundancy,
 * transmit them through a noisy channel at some physical redundancy
 * (coverage), reconstruct, and decode with erasure/corruption
 * accounting.
 *
 * Logical redundancy runs *across* strands: frames are grouped into
 * stripes and each stripe gains Reed-Solomon parity frames (or
 * XOR-group parity), so strands lost to erasures or rejected by
 * their CRC can be regenerated (section 1.1.3).
 */

#ifndef DNASIM_PIPELINE_ARCHIVAL_PIPELINE_HH
#define DNASIM_PIPELINE_ARCHIVAL_PIPELINE_HH

#include <memory>
#include <string>
#include <vector>

#include "cluster/greedy_cluster.hh"
#include "codec/dna_codec.hh"
#include "codec/framing.hh"
#include "core/channel_simulator.hh"
#include "core/coverage.hh"
#include "core/error_model.hh"
#include "data/dataset.hh"
#include "reconstruct/reconstructor.hh"

namespace dnasim
{

/** Logical-redundancy scheme selection. */
enum class RedundancyScheme
{
    None,        ///< erasures are unrecoverable
    XorGroups,   ///< one parity frame per group (Bornholt et al. [4])
    ReedSolomon, ///< RS parity frames per stripe (Grass et al. [12])
};

/** Pipeline configuration. */
struct PipelineConfig
{
    /// Payload bytes carried per strand.
    size_t payload_bytes = 18;
    /// Width of the frame index field.
    size_t index_bytes = 2;
    /// Homopolymer-free rotating codec (true) or the dense trivial
    /// 2-bit codec (false).
    bool rotating_codec = true;

    RedundancyScheme redundancy = RedundancyScheme::ReedSolomon;
    /// Data frames per RS stripe.
    size_t rs_stripe_data = 32;
    /// Parity frames per RS stripe.
    size_t rs_parity = 8;
    /// Data frames per XOR group.
    size_t xor_group = 7;

    /// Keep only the first max_reads simulated reads, in cluster
    /// order (0 = all). Clusters past the cap become erasures — a
    /// cheap prefix subsample for bounded smoke runs.
    size_t max_reads = 0;

    /// Discard the simulator's pseudo-clustering (section 3.1): pool
    /// the reads, shuffle them, and re-cluster with clusterReads()
    /// before reconstruction — the full wetlab-shaped pipeline.
    bool recluster = false;
    /// Clusterer settings used when recluster is on.
    ClusterOptions cluster;
};

/** Outcome counters of a retrieval. */
struct RetrievalStats
{
    size_t clusters = 0;
    size_t erasure_clusters = 0;   ///< empty clusters
    size_t undecodable_strands = 0; ///< codec failures
    size_t crc_failures = 0;
    size_t frames_recovered = 0;    ///< via logical redundancy
    size_t stripes_failed = 0;      ///< redundancy exceeded
};

/** A stored object: the strand library plus its directory entry. */
struct StoredObject
{
    std::vector<Strand> strands;
    size_t file_size = 0;
    size_t num_data_frames = 0;
    size_t num_total_frames = 0;
};

/** Result of a retrieval. */
struct RetrievedObject
{
    Bytes data;
    bool success = false;
    RetrievalStats stats;
};

/** The archival pipeline. */
class ArchivalPipeline
{
  public:
    explicit ArchivalPipeline(PipelineConfig config = {});

    const PipelineConfig &config() const { return config_; }

    /** The strand length this configuration produces. */
    size_t strandLength() const;

    /** Encode @p file into a strand library. */
    StoredObject store(const Bytes &file) const;

    /**
     * Decode a clustered read-out of a stored object.
     *
     * @param clusters clustered noisy copies, one cluster per strand
     *                 (order need not match; frames carry indices)
     * @param algo     trace-reconstruction algorithm
     * @param object   the directory entry produced by store()
     */
    RetrievedObject retrieve(const Dataset &clusters,
                             const Reconstructor &algo,
                             const StoredObject &object,
                             Rng &rng) const;

    /**
     * Convenience: store, transmit through @p model at @p coverage,
     * reconstruct with @p algo, and decode.
     *
     * A non-null @p lineage records the channel's injected error
     * events; a non-null @p simulated receives a copy of the
     * pseudo-clustered dataset the channel produced (the ground
     * truth the lineage log indexes). Neither affects the
     * retrieval — the decoded bytes are identical either way.
     */
    RetrievedObject roundTrip(const Bytes &file,
                              const ErrorModel &model,
                              const CoverageModel &coverage,
                              const Reconstructor &algo, Rng &rng,
                              LineageLog *lineage = nullptr,
                              Dataset *simulated = nullptr) const;

  private:
    const DnaCodec &codec() const;

    PipelineConfig config_;
    FrameCodec frame_codec_;
    TrivialCodec trivial_;
    RotatingCodec rotating_;
};

} // namespace dnasim

#endif // DNASIM_PIPELINE_ARCHIVAL_PIPELINE_HH
