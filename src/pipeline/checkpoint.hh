/**
 * @file
 * Stage checkpoints for out-of-core runs (dnasim.checkpoint.v1).
 *
 * A checkpoint directory lets simulate → cluster → reconstruct run
 * as separate bounded-RSS processes over mmap-backed snapshots:
 *
 * @verbatim
 * <dir>/refs.dnapool             reference strands
 * <dir>/reads.dnapool            simulated / ingested read pool
 * <dir>/origins.u32              per-read true cluster (LE u32)
 * <dir>/assignments.u32          per-read assigned cluster (LE u32)
 * <dir>/representatives.dnapool  cluster representatives
 * <dir>/manifest.json            dnasim.checkpoint.v1
 * @endverbatim
 *
 * The manifest carries the completed stage, the seed, the counts, an
 * echo of the stage configuration and the shared build-provenance
 * block. Every data file is published atomically and the manifest is
 * written *last*, so a killed run leaves the directory describing
 * the previous completed stage — resuming re-runs the interrupted
 * stage from its inputs and, because every stage is deterministic,
 * produces output byte-identical to an uninterrupted run.
 */

#ifndef DNASIM_PIPELINE_CHECKPOINT_HH
#define DNASIM_PIPELINE_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dnasim
{

/** Contents of a dnasim.checkpoint.v1 manifest. */
struct CheckpointManifest
{
    /// Last completed stage: "simulate" or "cluster".
    std::string stage;
    uint64_t seed = 0;
    uint64_t num_refs = 0;
    uint64_t num_reads = 0;
    uint64_t num_clusters = 0; ///< cluster stage only
    /// Echo of the stage configuration (ordered key/value strings),
    /// for humans and for resume-time mismatch warnings.
    std::vector<std::pair<std::string, std::string>> config;
};

/** Path layout and manifest I/O of one checkpoint directory. */
class CheckpointDir
{
  public:
    explicit CheckpointDir(std::string dir) : dir_(std::move(dir)) {}

    const std::string &dir() const { return dir_; }

    std::string refsPath() const { return join("refs.dnapool"); }
    std::string readsPath() const { return join("reads.dnapool"); }
    std::string originsPath() const { return join("origins.u32"); }
    std::string assignmentsPath() const
    {
        return join("assignments.u32");
    }
    std::string representativesPath() const
    {
        return join("representatives.dnapool");
    }
    std::string manifestPath() const { return join("manifest.json"); }

    /** True when a manifest exists (some stage completed here). */
    bool hasManifest() const;

    /**
     * Parse the manifest. Returns false (setting @p error when
     * non-null) when missing, unreadable, or not a
     * dnasim.checkpoint.v1 document.
     */
    bool readManifest(CheckpointManifest &out,
                      std::string *error = nullptr) const;

    /**
     * Serialize and atomically publish the manifest — the commit
     * point of a stage; call only after its data files are in place.
     */
    bool writeManifest(const CheckpointManifest &manifest,
                       std::string *error = nullptr) const;

  private:
    std::string join(const char *name) const
    {
        return dir_ + "/" + name;
    }

    std::string dir_;
};

/**
 * Atomically write @p values as little-endian u32s to @p path.
 * Returns false (setting @p error when non-null) on I/O failure.
 */
bool writeU32File(const std::string &path,
                  const std::vector<uint32_t> &values,
                  std::string *error = nullptr);

/** Read a u32 file back; false on open/size errors. */
bool readU32File(const std::string &path, std::vector<uint32_t> &out,
                 std::string *error = nullptr);

} // namespace dnasim

#endif // DNASIM_PIPELINE_CHECKPOINT_HH
