#include "pipeline/checkpoint.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/json.hh"
#include "obs/outfile.hh"
#include "obs/provenance.hh"

namespace dnasim
{

namespace
{

void
setError(std::string *error, std::string msg)
{
    if (error != nullptr)
        *error = std::move(msg);
}

} // anonymous namespace

bool
CheckpointDir::hasManifest() const
{
    std::error_code ec;
    return std::filesystem::exists(manifestPath(), ec);
}

bool
CheckpointDir::readManifest(CheckpointManifest &out,
                            std::string *error) const
{
    const std::string path = manifestPath();
    std::ifstream in(path);
    if (!in) {
        setError(error, "cannot open '" + path + "'");
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    obs::JsonValue doc;
    if (!obs::parseJson(buf.str(), doc, error))
        return false;
    const obs::JsonValue *schema = doc.find("schema");
    if (schema == nullptr ||
        schema->asString() != "dnasim.checkpoint.v1") {
        setError(error, "'" + path +
                            "' is not a dnasim.checkpoint.v1 "
                            "manifest");
        return false;
    }
    out = CheckpointManifest{};
    if (const auto *v = doc.find("stage"))
        out.stage = v->asString();
    if (const auto *v = doc.find("seed"))
        out.seed = v->asUint();
    if (const auto *v = doc.find("num_refs"))
        out.num_refs = v->asUint();
    if (const auto *v = doc.find("num_reads"))
        out.num_reads = v->asUint();
    if (const auto *v = doc.find("num_clusters"))
        out.num_clusters = v->asUint();
    if (const auto *cfg = doc.find("config"); cfg && cfg->isObject())
        for (const auto &[key, val] : cfg->object())
            out.config.emplace_back(key, val.asString());
    return true;
}

bool
CheckpointDir::writeManifest(const CheckpointManifest &manifest,
                             std::string *error) const
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.value("schema", "dnasim.checkpoint.v1");
    w.value("stage", manifest.stage);
    w.value("seed", manifest.seed);
    w.value("num_refs", manifest.num_refs);
    w.value("num_reads", manifest.num_reads);
    w.value("num_clusters", manifest.num_clusters);
    w.beginObject("config");
    for (const auto &[key, value] : manifest.config)
        w.value(key, value);
    w.endObject();
    obs::writeProvenance(w);
    w.endObject();
    os << "\n";
    return obs::writeFileAtomic(manifestPath(), os.str(), error);
}

bool
writeU32File(const std::string &path,
             const std::vector<uint32_t> &values, std::string *error)
{
    obs::AtomicFile out;
    if (!out.open(path, error))
        return false;
    if (!values.empty()) {
        out.stream().write(
            reinterpret_cast<const char *>(values.data()),
            static_cast<std::streamsize>(values.size() *
                                         sizeof(uint32_t)));
    }
    return out.commit(error);
}

bool
readU32File(const std::string &path, std::vector<uint32_t> &out,
            std::string *error)
{
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec) {
        setError(error, "cannot stat '" + path + "': " + ec.message());
        return false;
    }
    if (size % sizeof(uint32_t) != 0) {
        setError(error, "'" + path + "' is not a u32 array (size " +
                            std::to_string(size) + ")");
        return false;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        setError(error, "cannot open '" + path + "'");
        return false;
    }
    out.resize(static_cast<size_t>(size / sizeof(uint32_t)));
    if (!out.empty()) {
        in.read(reinterpret_cast<char *>(out.data()),
                static_cast<std::streamsize>(size));
        if (in.gcount() != static_cast<std::streamsize>(size)) {
            setError(error, "short read on '" + path + "'");
            return false;
        }
    }
    return true;
}

} // namespace dnasim
