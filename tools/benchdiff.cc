/**
 * @file
 * Standalone bench-ledger comparator, the CI perf gate's entry
 * point. Equivalent to `dnasim bench diff` but links only the obs
 * layer, so the gate can compare BENCH_*.json artifacts without
 * building the full simulator.
 *
 *   benchdiff <baseline> <candidate> [--threshold p] [--sigma k]
 *             [--mem-threshold p] [--mem-gate] [--json] [--out FILE]
 *
 * Inputs are single .json reports, .jsonl ledgers, or directories
 * scanned recursively for BENCH_*.json (repeats in subdirectories
 * group into samples). Exit codes: 0 clean, 1 usage/IO error,
 * 2 regression detected.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/history.hh"

namespace
{

int
usage()
{
    std::cerr
        << "usage: benchdiff <baseline> <candidate> [options]\n"
           "  --threshold p   minimum relative slowdown to flag "
           "(default 0.05)\n"
           "  --sigma k       noise multiplier over the pooled "
           "stddev (default 3.0)\n"
           "  --mem-threshold p  minimum relative RSS high-water "
           "growth to flag (default 0.25)\n"
           "  --mem-gate      fail (exit 2) on memory regressions "
           "too, not just report them\n"
           "  --json          machine-readable dnasim.benchdiff.v1 "
           "output\n"
           "  --out FILE      also write the JSON report to FILE\n"
           "inputs: BENCH_*.json file, BENCH_LEDGER.jsonl, or a "
           "directory\n"
           "exit: 0 ok, 1 error, 2 regression\n";
    return 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace dnasim;

    std::vector<std::string> inputs;
    obs::DiffOptions options;
    bool json = false;
    std::string out_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--threshold" && i + 1 < argc) {
            options.threshold = std::strtod(argv[++i], nullptr);
        } else if (arg.rfind("--threshold=", 0) == 0) {
            options.threshold =
                std::strtod(arg.c_str() + 12, nullptr);
        } else if (arg == "--sigma" && i + 1 < argc) {
            options.sigma = std::strtod(argv[++i], nullptr);
        } else if (arg.rfind("--sigma=", 0) == 0) {
            options.sigma = std::strtod(arg.c_str() + 8, nullptr);
        } else if (arg == "--mem-threshold" && i + 1 < argc) {
            options.mem_threshold = std::strtod(argv[++i], nullptr);
        } else if (arg.rfind("--mem-threshold=", 0) == 0) {
            options.mem_threshold =
                std::strtod(arg.c_str() + 16, nullptr);
        } else if (arg == "--mem-gate") {
            options.mem_gate = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(6);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "benchdiff: unknown option " << arg << "\n";
            return usage();
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.size() != 2)
        return usage();

    std::vector<std::string> errors;
    auto baseline = obs::loadBenchInput(inputs[0], &errors);
    auto candidate = obs::loadBenchInput(inputs[1], &errors);
    for (const auto &e : errors)
        std::cerr << "benchdiff: skipped: " << e << "\n";
    if (baseline.empty()) {
        std::cerr << "benchdiff: no baseline runs in " << inputs[0]
                  << "\n";
        return 1;
    }
    if (candidate.empty()) {
        std::cerr << "benchdiff: no candidate runs in " << inputs[1]
                  << "\n";
        return 1;
    }

    obs::DiffReport report =
        obs::diffBenchRuns(baseline, candidate, options);
    if (json)
        std::cout << obs::diffToJson(report, options);
    else
        std::cout << obs::diffToText(report, options);
    if (!out_path.empty()) {
        std::ofstream os(out_path);
        if (!os) {
            std::cerr << "benchdiff: cannot write " << out_path
                      << "\n";
            return 1;
        }
        os << obs::diffToJson(report, options);
    }
    return report.ok() ? 0 : 2;
}
